#include <gtest/gtest.h>

#include "split/segmenter.hpp"
#include "split/shot_detector.hpp"
#include "video/genres.hpp"
#include "video/source.hpp"

namespace dcsr::split {
namespace {

// A video with known cuts at frames 30 and 60 (three static, very different
// scenes).
std::unique_ptr<SyntheticVideo> video_with_cuts() {
  Rng rng(1);
  std::vector<SceneSpec> scenes;
  for (int i = 0; i < 3; ++i) {
    SceneSpec s = random_scene(rng, 0.0f, 0.3f);
    s.background = Background::kGradient;
    s.sprites.clear();
    s.flicker = 0.0f;
    // Flat scenes with clearly separated luma levels (0.15 / 0.5 / 0.85) so
    // every cut produces a large, known difference spike.
    const float v = 0.15f + 0.35f * static_cast<float>(i);
    s.color_a = {v, v, v};
    s.color_b = {v, v, v};
    scenes.push_back(s);
  }
  std::vector<Shot> shots{{0, 30, 0.0}, {1, 30, 0.0}, {2, 30, 0.0}};
  return std::make_unique<SyntheticVideo>("cuts", scenes, shots, 64, 48, 30.0);
}

TEST(ShotDetector, DifferenceSignalSpikesAtCuts) {
  const auto video = video_with_cuts();
  const auto diffs = frame_differences(*video);
  ASSERT_EQ(diffs.size(), 90u);
  EXPECT_DOUBLE_EQ(diffs[0], 0.0);
  // Cuts at 30 and 60 dominate everything else.
  for (std::size_t i = 1; i < diffs.size(); ++i) {
    if (i == 30 || i == 60) {
      EXPECT_GT(diffs[i], 0.2) << "cut at " << i;
    } else {
      EXPECT_LT(diffs[i], 0.05) << "non-cut at " << i;
    }
  }
}

TEST(ShotDetector, DetectsExactBoundaries) {
  const auto video = video_with_cuts();
  EXPECT_EQ(detect_shots(*video), (std::vector<int>{0, 30, 60}));
}

TEST(ShotDetector, ThresholdControlsSensitivity) {
  const auto video = make_genre_video(Genre::kMusicVideo, 3, 64, 48, 20.0);
  ShotDetectorConfig loose{.thumb_width = 48, .threshold = 0.3};
  ShotDetectorConfig tight{.thumb_width = 48, .threshold = 0.02};
  EXPECT_LE(detect_shots(*video, loose).size(), detect_shots(*video, tight).size());
}

TEST(Segmenter, VariableSegmentsCoverVideoExactly) {
  const auto video = make_genre_video(Genre::kSports, 4, 64, 48, 15.0);
  const auto plans = variable_segments(*video);
  ASSERT_FALSE(plans.empty());
  int expected = 0;
  for (const auto& p : plans) {
    EXPECT_EQ(p.first_frame, expected);
    EXPECT_GT(p.frame_count, 0);
    expected += p.frame_count;
  }
  EXPECT_EQ(expected, video->frame_count());
}

TEST(Segmenter, SegmentsAlignWithSceneCuts) {
  const auto video = video_with_cuts();
  const auto plans = variable_segments(*video);
  ASSERT_EQ(plans.size(), 3u);
  EXPECT_EQ(plans[0].first_frame, 0);
  EXPECT_EQ(plans[1].first_frame, 30);
  EXPECT_EQ(plans[2].first_frame, 60);
}

TEST(Segmenter, RespectsMaxSegmentLength) {
  const auto video = video_with_cuts();
  SegmenterConfig cfg;
  cfg.max_segment_frames = 20;
  for (const auto& p : variable_segments(*video, cfg))
    EXPECT_LE(p.frame_count, 20);
}

TEST(Segmenter, RespectsMinSegmentLength) {
  const auto video = make_genre_video(Genre::kMusicVideo, 5, 64, 48, 20.0);
  SegmenterConfig cfg;
  cfg.detector.threshold = 0.01;  // hypersensitive: many raw cuts
  cfg.min_segment_frames = 15;
  for (const auto& p : variable_segments(*video, cfg))
    EXPECT_GE(p.frame_count, 15);
}

TEST(Segmenter, FixedSegmentsPartitionExactly) {
  const auto plans = fixed_segments(100, 30);
  ASSERT_EQ(plans.size(), 4u);
  EXPECT_EQ(plans[3].first_frame, 90);
  EXPECT_EQ(plans[3].frame_count, 10);
  EXPECT_THROW(fixed_segments(0, 30), std::invalid_argument);
  EXPECT_THROW(fixed_segments(100, 0), std::invalid_argument);
}

TEST(Segmenter, VariableNeedsFewerSegmentsThanShortFixed) {
  // Content-aware split should produce fewer I-frame positions than a
  // 1-second fixed split on typical content — the paper's encoding-overhead
  // argument for shot-based splitting.
  const auto video = make_genre_video(Genre::kDocumentary, 6, 64, 48, 30.0);
  const auto var = variable_segments(*video);
  const auto fixed = fixed_segments(video->frame_count(), 30);
  EXPECT_LT(var.size(), fixed.size());
}

}  // namespace
}  // namespace dcsr::split
