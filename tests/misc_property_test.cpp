// Additional cross-cutting property tests.

#include <gtest/gtest.h>

#include "codec/container.hpp"
#include "codec/encoder.hpp"
#include "core/client_pipeline.hpp"
#include "image/metrics.hpp"
#include "image/resize.hpp"
#include "stream/playlist.hpp"
#include "video/genres.hpp"

namespace dcsr {
namespace {

// ---------------------------------------------------------------------------
// Resolution independence of the video generator: rendering the same scene
// script at half resolution must approximate a downscale of the full-res
// render. (bench_sr_mode builds its half-res stream on this property.)
// ---------------------------------------------------------------------------

class ResolutionIndependence : public ::testing::TestWithParam<int> {};

TEST_P(ResolutionIndependence, HalfResRenderMatchesDownscaledFullRes) {
  // Scenes whose feature sizes stay above the renderer's texture floor at
  // both resolutions (very fine textures are clamped to a minimum pixel
  // size per resolution and are NOT expected to be resolution-consistent).
  Rng rng(static_cast<std::uint64_t>(200 + GetParam()));
  SceneSpec spec = random_scene(rng, /*motion=*/0.5f, /*detail=*/0.3f);
  spec.texture_scale = 300.0f;  // ~18 px at 64 rows, ~9 px at 32 rows
  // Sharp periodic backgrounds (stripes/checker) legitimately alias
  // differently per resolution; smooth backgrounds are the invariant case.
  if (spec.background == Background::kStripes ||
      spec.background == Background::kCheckerboard)
    spec.background = Background::kTexture;
  for (auto& s : spec.sprites) s.texture_amount = 0.0f;

  std::vector<SceneSpec> scenes{spec};
  std::vector<Shot> shots{{0, 40, 0.0}};
  const SyntheticVideo full("full", scenes, shots, 96, 64, 10.0);
  const SyntheticVideo half("half", scenes, shots, 48, 32, 10.0);
  for (int i = 0; i < 40; i += 13) {
    const FrameRGB down = downscale_box(full.frame(i), 2);
    const double q = psnr(down, half.frame(i));
    EXPECT_GT(q, 24.0) << "frame " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Scenes, ResolutionIndependence, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Playback measurement options.
// ---------------------------------------------------------------------------

TEST(PlaybackOptions, SsimStrideControlsSampleCount) {
  const auto video = make_genre_video(Genre::kNews, 101, 64, 48, 4.0, 15.0);
  codec::CodecConfig cfg;
  cfg.crf = 40;
  const auto encoded =
      codec::Encoder(cfg).encode(*video, {{0, video->frame_count()}});

  core::PlaybackOptions sparse;
  sparse.ssim_stride = 10;
  core::PlaybackOptions dense;
  dense.ssim_stride = 2;
  const auto a = core::play_low(encoded, *video, sparse);
  const auto b = core::play_low(encoded, *video, dense);
  EXPECT_EQ(a.frame_psnr.size(), b.frame_psnr.size());  // PSNR always dense
  EXPECT_LT(a.frame_ssim.size(), b.frame_ssim.size());
  EXPECT_EQ(a.frame_ssim.size(),
            (a.frame_psnr.size() + 9) / 10);
}

TEST(PlaybackOptions, PsnrIndicesAreSequential) {
  const auto video = make_genre_video(Genre::kSports, 102, 64, 48, 2.0, 15.0);
  codec::CodecConfig cfg;
  const auto encoded =
      codec::Encoder(cfg).encode(*video, {{0, 15}, {15, 15}});
  const auto r = core::play_low(encoded, *video);
  ASSERT_EQ(r.psnr_frame_index.size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(r.psnr_frame_index[static_cast<std::size_t>(i)], i);
}

// ---------------------------------------------------------------------------
// Playlist parser fuzzing: random single-character mutations either parse to
// a manifest (harmless edit inside a number, say) or throw — never crash.
// Mutated parses that DO succeed must still be structurally sane.
// ---------------------------------------------------------------------------

TEST(PlaylistFuzz, RandomMutationsNeverCrashOrYieldNonsense) {
  stream::Manifest m;
  m.model_bytes = {100, 250};
  m.segments.push_back({0, 30, 4000, 0});
  m.segments.push_back({1, 25, 3000, 1});
  m.segments.push_back({2, 40, 5000, stream::kNoModel});
  const std::string clean = stream::write_playlist(m);

  Rng rng(12345);
  int threw = 0, parsed = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = clean;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
    text[pos] = static_cast<char>(rng.uniform_int(32, 126));
    try {
      const stream::Manifest out = stream::parse_playlist(text);
      ++parsed;
      // Whatever parsed must be internally consistent.
      for (const auto& seg : out.segments) {
        if (seg.model_label != stream::kNoModel) {
          ASSERT_GE(seg.model_label, 0);
          ASSERT_LT(static_cast<std::size_t>(seg.model_label),
                    out.model_bytes.size());
        }
      }
    } catch (const std::invalid_argument&) {
      ++threw;
    }
  }
  EXPECT_EQ(threw + parsed, 300);
  EXPECT_GT(threw, 100);  // most mutations break the strict grammar
}

// ---------------------------------------------------------------------------
// Container round trip across encoder configurations (TEST_P).
// ---------------------------------------------------------------------------

using ContainerParams = std::tuple<int /*crf*/, bool /*b*/, bool /*deblock*/>;

class ContainerSweep : public ::testing::TestWithParam<ContainerParams> {};

TEST_P(ContainerSweep, RoundTripsAndDecodes) {
  const auto [crf, use_b, deblock] = GetParam();
  const auto video = make_genre_video(Genre::kGaming, 103, 64, 48, 1.0, 15.0);
  codec::CodecConfig cfg;
  cfg.crf = crf;
  cfg.use_b_frames = use_b;
  cfg.deblock = deblock;
  const auto encoded =
      codec::Encoder(cfg).encode(*video, {{0, video->frame_count()}});

  ByteWriter w;
  codec::write_container(encoded, w);
  ByteReader r(w.bytes());
  const auto parsed = codec::read_container(r);
  EXPECT_EQ(parsed.deblock, deblock);
  EXPECT_EQ(parsed.size_bytes(), encoded.size_bytes());

  codec::Decoder dec(64, 48, parsed.crf);
  const auto frames = dec.decode_video(parsed);
  EXPECT_EQ(frames.size(), static_cast<std::size_t>(video->frame_count()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ContainerSweep,
                         ::testing::Combine(::testing::Values(25, 51),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

}  // namespace
}  // namespace dcsr
