// Macroblock-row slice tests: the sliced (container v3) coded format must
// reconstruct bit-identically for every slice count, reject malformed slice
// framing with typed errors, decode pre-slice (v2) fixtures unchanged, and
// keep the warm decode loop heap-silent.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "codec/container.hpp"
#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "codec/errors.hpp"
#include "codec/frame_coding.hpp"
#include "codec/quant.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "util/alloc_check.hpp"
#include "util/file.hpp"
#include "util/serialize.hpp"
#include "video/genres.hpp"

namespace dcsr::codec {
namespace {

bool planes_equal(const Plane& a, const Plane& b) {
  return a.same_size(b) &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

bool frames_equal(const FrameYUV& a, const FrameYUV& b) {
  return planes_equal(a.y, b.y) && planes_equal(a.u, b.u) &&
         planes_equal(a.v, b.v);
}

EncodedVideo encode_sample(int slices, bool b_frames = true) {
  const auto video = make_genre_video(Genre::kSports, 31, 64, 64, 1.0);
  CodecConfig cfg;
  cfg.crf = 30;
  cfg.use_b_frames = b_frames;
  cfg.intra_period = 10;
  cfg.slices = slices;
  return Encoder(cfg).encode(*video, {{0, video->frame_count()}});
}

// ---- Partition geometry -----------------------------------------------------

TEST(SlicePartition, TilesAllRowsContiguously) {
  for (int rows = 1; rows <= 9; ++rows) {
    for (int slices = 1; slices <= 12; ++slices) {
      const auto spans = slice_partition(rows, slices);
      ASSERT_FALSE(spans.empty());
      EXPECT_LE(static_cast<int>(spans.size()), rows);  // clamped, never empty
      int next = 0;
      for (const SliceSpan s : spans) {
        EXPECT_EQ(s.first_mb_row, next);
        EXPECT_GE(s.mb_row_count, 1);
        next += s.mb_row_count;
      }
      EXPECT_EQ(next, rows);
    }
  }
}

// ---- Cross-slice-count bit identity ----------------------------------------

TEST(Slice, DecodeIsBitIdenticalAcrossSliceCounts) {
  // The restricted prediction never crosses an MB-row boundary, so the
  // reconstruction is one fixed point and the slice count is purely a
  // packaging/parallelism decision. Decode whole videos (I, P and B frames)
  // encoded at 1, 2 and 4 slices and require float-for-float equality.
  const EncodedVideo base = encode_sample(1);
  Decoder dec1(base.width, base.height, base.crf);
  const auto ref = dec1.decode_video(base);
  ASSERT_FALSE(ref.empty());

  for (const int slices : {2, 4}) {
    const EncodedVideo ev = encode_sample(slices);
    ASSERT_EQ(ev.segments.size(), base.segments.size());
    for (const auto& seg : ev.segments)
      for (const auto& ef : seg.frames)
        EXPECT_EQ(static_cast<int>(ef.slice_sizes.size()), slices);
    Decoder dec(ev.width, ev.height, ev.crf);
    const auto got = dec.decode_video(ev);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_TRUE(frames_equal(got[i], ref[i]))
          << "frame " << i << " diverges at " << slices << " slices";
  }
}

TEST(Slice, PFrameSliceRowsMatchSliceOneBitstream) {
  // P/B slices carry byte-identical row content to the 1-slice encode (only
  // the resync headers are new per slice); the reconstruction equality above
  // plus this payload check pins that slicing splits, never re-codes.
  const EncodedVideo one = encode_sample(1, /*b_frames=*/false);
  const EncodedVideo two = encode_sample(2, /*b_frames=*/false);
  ASSERT_EQ(one.segments.size(), two.segments.size());
  std::size_t compared = 0;
  for (std::size_t s = 0; s < one.segments.size(); ++s) {
    for (std::size_t f = 0; f < one.segments[s].frames.size(); ++f) {
      const EncodedFrame& a = one.segments[s].frames[f];
      const EncodedFrame& b = two.segments[s].frames[f];
      // Sliced payloads are the same coded bits, re-chunked: total size can
      // only grow by the extra header bytes, never shrink.
      EXPECT_GE(b.payload.size() + 8, a.payload.size());
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u);
}

// ---- Slice framing errors ---------------------------------------------------

TEST(Slice, CorruptResyncMarkerThrows) {
  EncodedVideo ev = encode_sample(2);
  EncodedFrame& ef = ev.segments[0].frames[0];
  ASSERT_TRUE(ef.sliced());
  ef.payload[0] ^= 0xff;  // first slice's marker byte
  Decoder dec(ev.width, ev.height, ev.crf);
  EXPECT_THROW((void)dec.decode_segment(ev.segments[0]), BitstreamError);
}

TEST(Slice, SwappedSliceSubstreamsThrowGeometryError) {
  // Swap the two substreams of a 2-slice frame: every slice header now
  // claims the other slice's rows. The redundant geometry check must refuse
  // before any pixel is written.
  EncodedVideo ev = encode_sample(2);
  EncodedFrame& ef = ev.segments[0].frames[0];
  ASSERT_EQ(ef.slice_sizes.size(), 2u);
  const std::size_t n0 = ef.slice_sizes[0], n1 = ef.slice_sizes[1];
  std::vector<std::uint8_t> swapped;
  swapped.insert(swapped.end(), ef.payload.begin() + static_cast<long>(n0),
                 ef.payload.end());
  swapped.insert(swapped.end(), ef.payload.begin(),
                 ef.payload.begin() + static_cast<long>(n0));
  ef.payload = std::move(swapped);
  std::swap(ef.slice_sizes[0], ef.slice_sizes[1]);
  ASSERT_EQ(ef.slice_sizes[0], n1);
  Decoder dec(ev.width, ev.height, ev.crf);
  EXPECT_THROW((void)dec.decode_segment(ev.segments[0]), BitstreamError);
}

TEST(Slice, SliceSizeSumMismatchThrows) {
  EncodedVideo ev = encode_sample(2);
  EncodedFrame& ef = ev.segments[0].frames[0];
  ef.slice_sizes[0] += 1;  // table no longer sums to the payload size
  Decoder dec(ev.width, ev.height, ev.crf);
  EXPECT_THROW((void)dec.decode_segment(ev.segments[0]), BitstreamError);
}

TEST(Slice, MoreSlicesThanMacroblockRowsThrows) {
  EncodedVideo ev = encode_sample(1);
  EncodedFrame& ef = ev.segments[0].frames[0];
  // 64x64 has 4 MB rows; claim 5 slices whose sizes still sum correctly.
  ASSERT_GE(ef.payload.size(), 5u);
  const auto total = static_cast<std::uint32_t>(ef.payload.size());
  ef.slice_sizes = {1, 1, 1, 1, total - 4};
  Decoder dec(ev.width, ev.height, ev.crf);
  EXPECT_THROW((void)dec.decode_segment(ev.segments[0]), BitstreamError);
}

TEST(Slice, TruncatedSliceSubstreamThrows) {
  EncodedVideo ev = encode_sample(2);
  EncodedFrame& ef = ev.segments[0].frames[0];
  // Drop the last slice's tail but keep the table consistent: the entropy
  // loop must hit the over-read guard, not wander out of the buffer.
  const std::size_t n = ef.payload.size();
  ASSERT_GT(ef.slice_sizes[1], 4u);
  ASSERT_GT(n, 4u);
  ef.slice_sizes[1] -= 4;
  ef.payload.resize(n > 4 ? n - 4 : 0);
  Decoder dec(ev.width, ev.height, ev.crf);
  EXPECT_THROW((void)dec.decode_segment(ev.segments[0]), BitstreamError);
}

// ---- Container v2/v3 --------------------------------------------------------

TEST(Slice, V3ContainerRoundTripPreservesSliceSizes) {
  const EncodedVideo ev = encode_sample(3);
  ByteWriter w;
  write_container(ev, w);
  EXPECT_EQ(w.bytes()[0], 0x33);  // "dcV3", LSB first
  ByteReader r(w.bytes());
  const EncodedVideo back = read_container(r);
  ASSERT_EQ(back.segments.size(), ev.segments.size());
  for (std::size_t s = 0; s < ev.segments.size(); ++s) {
    ASSERT_EQ(back.segments[s].frames.size(), ev.segments[s].frames.size());
    for (std::size_t f = 0; f < ev.segments[s].frames.size(); ++f) {
      EXPECT_EQ(back.segments[s].frames[f].slice_sizes,
                ev.segments[s].frames[f].slice_sizes);
      EXPECT_EQ(back.segments[s].frames[f].payload,
                ev.segments[s].frames[f].payload);
    }
  }
}

TEST(Slice, SlicelessStreamStillWritesV2) {
  // Hand-built pre-slice streams must keep producing byte-compatible v2
  // files so old readers (and the checked-in fixture) stay valid.
  EncodedVideo v;
  v.width = 16;
  v.height = 16;
  EncodedSegment seg;
  EncodedFrame ef;
  ef.type = FrameType::kI;
  ef.payload = {1, 2, 3};
  seg.frames.push_back(std::move(ef));
  v.segments.push_back(std::move(seg));
  ByteWriter w;
  write_container(v, w);
  EXPECT_EQ(w.bytes()[0], 0x32);  // still "dcV2"
  ByteReader r(w.bytes());
  const EncodedVideo back = read_container(r);
  EXPECT_TRUE(back.segments[0].frames[0].slice_sizes.empty());
  EXPECT_EQ(back.segments[0].frames[0].payload, v.segments[0].frames[0].payload);
}

// The pinned CRC below is an FP-exact cross-build claim, and sanitizer
// instrumentation legitimately changes scalar FP contraction — so only
// uninstrumented builds check the exact bytes; sanitized builds still check
// structure and reconstruction fidelity.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define DCSR_FP_EXACT_BUILD 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DCSR_FP_EXACT_BUILD 0
#else
#define DCSR_FP_EXACT_BUILD 1
#endif
#else
#define DCSR_FP_EXACT_BUILD 1
#endif

TEST(Slice, PreSliceFixtureDecodesUnchanged) {
  // tests/data/pre-slice-v2.dcv was written and decoded by the build
  // *before* slices existed; the pinned CRC is over every decoded sample of
  // all 60 frames. The sliced decoder must keep reading the v2 format and
  // reproduce the old reconstruction bit-for-bit.
  const auto bytes = read_file(std::string(DCSR_DATA_DIR) + "/pre-slice-v2.dcv");
  ByteReader r(bytes);
  const EncodedVideo ev = read_container(r);
  EXPECT_EQ(ev.width, 64);
  EXPECT_EQ(ev.height, 48);
  for (const auto& seg : ev.segments)
    for (const auto& ef : seg.frames) EXPECT_FALSE(ef.sliced());

  Decoder dec(ev.width, ev.height, ev.crf);
  const auto frames = dec.decode_video(ev);
  ASSERT_EQ(frames.size(), 60u);

  // Any build: the fixture must reconstruct its source (kSports seed 42,
  // CRF 30) faithfully — garbage from a broken v2 path lands far below this.
  const auto source = make_genre_video(Genre::kSports, 42, 64, 48, 2.0);
  double psnr_acc = 0.0;
  for (std::size_t i = 0; i < frames.size(); ++i)
    psnr_acc += psnr_luma(rgb_to_yuv420(source->frame(static_cast<int>(i))),
                          frames[i]);
  EXPECT_GT(psnr_acc / static_cast<double>(frames.size()), 25.0);

  ByteWriter yuv;
  for (const auto& f : frames) {
    yuv.write_f32_span(f.y.data(), f.y.size());
    yuv.write_f32_span(f.u.data(), f.u.size());
    yuv.write_f32_span(f.v.data(), f.v.size());
  }
  EXPECT_EQ(yuv.size(), 1105920u);
#if DCSR_FP_EXACT_BUILD
  EXPECT_EQ(crc32(yuv.bytes().data(), yuv.size()), 0x1380e174u);
#endif
}

// ---- Warm decode heap silence ----------------------------------------------

#if DCSR_ALLOC_CHECK
TEST(Decode, SteadyStateIsHeapSilent) {
  // Once the decoder's scratch (slice spans/offsets, reference frames,
  // output planes) is warm, decoding further segments into reused frames
  // must not touch the allocator at all — the per-slice entropy readers are
  // non-owning views and the claim spans are stack values.
  const EncodedVideo ev = encode_sample(2);
  Decoder dec(ev.width, ev.height, ev.crf);
  dec.set_deblock(ev.deblock);
  std::vector<FrameYUV> out;
  for (int i = 0; i < 3; ++i)  // warm-up: pool, planes, scratch
    dec.decode_segment_into(ev.segments[0], out);

  const AllocStats warm = thread_alloc_stats();
  for (int i = 0; i < 10; ++i) dec.decode_segment_into(ev.segments[0], out);
  const AllocStats after = thread_alloc_stats();
  EXPECT_EQ(after.allocs - warm.allocs, 0u)
      << "steady-state decode must not touch the heap";
  EXPECT_EQ(after.frees - warm.frees, 0u);
  EXPECT_EQ(after.bytes - warm.bytes, 0u);
}
#endif

}  // namespace
}  // namespace dcsr::codec
