#include <gtest/gtest.h>

#include "device/latency.hpp"
#include "device/power.hpp"
#include "device/profiles.hpp"
#include "sr/model_zoo.hpp"

namespace dcsr::device {
namespace {

TEST(Profiles, OrderedByCapability) {
  EXPECT_LT(jetson_xavier_nx().effective_tflops, laptop_gtx1060().effective_tflops);
  EXPECT_LT(laptop_gtx1060().effective_tflops, desktop_rtx2070().effective_tflops);
  EXPECT_LT(jetson_xavier_nx().mem_budget_bytes, desktop_rtx2070().mem_budget_bytes);
}

TEST(Profiles, ResolutionPresets) {
  EXPECT_EQ(res_720p().width, 1280);
  EXPECT_EQ(res_1080p().height, 1080);
  EXPECT_NEAR(res_4k().megapixels(), 8.29, 0.01);
}

TEST(Latency, InferenceScalesWithModelAndResolution) {
  const DeviceProfile dev = jetson_xavier_nx();
  const double small_720 = inference_seconds(dev, sr::dcsr1_config(), res_720p());
  const double big_720 = inference_seconds(dev, sr::big_model_config(), res_720p());
  const double small_4k = inference_seconds(dev, sr::dcsr1_config(), res_4k());
  EXPECT_GT(big_720, small_720 * 10);
  EXPECT_GT(small_4k, small_720 * 4);  // ~9x pixels
}

TEST(Latency, FasterDeviceInfersFaster) {
  const auto cfg = sr::dcsr3_config();
  EXPECT_GT(inference_seconds(jetson_xavier_nx(), cfg, res_1080p()),
            inference_seconds(desktop_rtx2070(), cfg, res_1080p()));
}

TEST(Latency, BigModelOomsAt4kOnJetsonOnly) {
  // The paper's Fig. 8(c) result: "NAS and NEMO cannot even run for 4K
  // resolution because of running out of memory" on the mobile device,
  // while Fig. 12 shows them running at 4K on laptop/desktop.
  const auto big = sr::big_model_config();
  EXPECT_FALSE(fits_memory(jetson_xavier_nx(), big, res_4k()));
  EXPECT_TRUE(fits_memory(laptop_gtx1060(), big, res_4k()));
  EXPECT_TRUE(fits_memory(desktop_rtx2070(), big, res_4k()));
  // Micro models fit everywhere.
  EXPECT_TRUE(fits_memory(jetson_xavier_nx(), sr::dcsr3_config(), res_4k()));
  // And the big model fits the Jetson at lower resolutions.
  EXPECT_TRUE(fits_memory(jetson_xavier_nx(), big, res_1080p()));
}

TEST(Latency, SegmentFpsReproducesFig8Shape) {
  const DeviceProfile jetson = jetson_xavier_nx();
  constexpr int kSegFrames = 120;  // 4 s at 30 fps

  // dcSR-1 meets 30 FPS at every resolution with 1 inference per segment.
  for (const Resolution& res : {res_720p(), res_1080p(), res_4k()}) {
    const auto t = segment_fps(jetson, sr::dcsr1_config(), res, kSegFrames, 1);
    EXPECT_FALSE(t.oom) << res.name;
    EXPECT_GE(t.fps, 30.0) << res.name;
  }
  // NEMO (big model, I frames only): ~30 FPS at 720p, clearly below at 1080p.
  const auto nemo_720 = segment_fps(jetson, sr::big_model_config(), res_720p(), kSegFrames, 1);
  EXPECT_GE(nemo_720.fps, 28.0);
  const auto nemo_1080 = segment_fps(jetson, sr::big_model_config(), res_1080p(), kSegFrames, 1);
  EXPECT_LT(nemo_1080.fps, 30.0);
  // NAS (big model, every frame): under 1 FPS.
  const auto nas_720 = segment_fps(jetson, sr::big_model_config(), res_720p(),
                                   kSegFrames, kSegFrames);
  EXPECT_LT(nas_720.fps, 1.0);
  // Big model at 4K: OOM.
  EXPECT_TRUE(segment_fps(jetson, sr::big_model_config(), res_4k(), kSegFrames, 1).oom);
}

TEST(Latency, FpsDecreasesWithInferencesPerSegment) {
  const DeviceProfile jetson = jetson_xavier_nx();
  double prev = 1e9;
  for (int n = 1; n <= 5; ++n) {
    const auto t = segment_fps(jetson, sr::dcsr2_config(), res_1080p(), 120, n);
    EXPECT_LT(t.fps, prev);
    prev = t.fps;
  }
}

TEST(Latency, LaptopAndDesktopRunDcsrAt4k) {
  // Fig. 12: dcSR meets 30 FPS regardless of device and inference count.
  for (const DeviceProfile& dev : {laptop_gtx1060(), desktop_rtx2070()}) {
    for (int n = 2; n <= 10; n += 2) {
      const auto t = segment_fps(dev, sr::dcsr3_config(), res_4k(), 120, n);
      EXPECT_FALSE(t.oom);
      EXPECT_GE(t.fps, 30.0) << dev.name << " n=" << n;
    }
  }
}

TEST(Latency, MemoryModelMatchesEdsrActivationBytes) {
  // fits_memory() re-derives Edsr::activation_bytes in closed form; the two
  // must agree exactly, or OOM predictions drift from the real model.
  Rng rng(1);
  for (const sr::EdsrConfig cfg :
       {sr::dcsr1_config(), sr::dcsr3_config(),
        sr::EdsrConfig{.n_filters = 8, .n_resblocks = 2, .scale = 2}}) {
    sr::Edsr model(cfg, rng);
    const Resolution res = res_720p();
    const std::uint64_t expect =
        model.activation_bytes(res.width, res.height) + sr::edsr_model_bytes(cfg);
    DeviceProfile dev = jetson_xavier_nx();
    dev.mem_budget_bytes = static_cast<double>(expect);
    EXPECT_TRUE(fits_memory(dev, cfg, res)) << sr::config_name(cfg);
    dev.mem_budget_bytes = static_cast<double>(expect - 1);
    EXPECT_FALSE(fits_memory(dev, cfg, res)) << sr::config_name(cfg);
  }
}

TEST(Latency, OverheadIncludedInInference) {
  // inference_seconds must include the fixed per-inference overhead: a
  // hypothetical zero-FLOP model still costs the overhead.
  DeviceProfile dev = jetson_xavier_nx();
  const double with = inference_seconds(dev, sr::dcsr1_config(), res_720p());
  dev.inference_overhead_ms = 0.0;
  const double without = inference_seconds(dev, sr::dcsr1_config(), res_720p());
  EXPECT_NEAR(with - without, 0.05, 1e-9);
}

TEST(Latency, DecodeTimeLinearInPixels) {
  const DeviceProfile dev = laptop_gtx1060();
  const double d720 = decode_seconds(dev, res_720p());
  const double d4k = decode_seconds(dev, res_4k());
  EXPECT_NEAR(d4k / d720, res_4k().megapixels() / res_720p().megapixels(), 1e-9);
}

TEST(Power, NasSaturatesGpu) {
  const DeviceProfile jetson = jetson_xavier_nx();
  PowerConfig cfg;
  cfg.model = sr::big_model_config();
  cfg.resolution = res_1080p();
  cfg.schedule = InferenceSchedule::kEveryFrame;
  const PowerTrace trace = simulate_power(jetson, cfg, 60.0);
  // Sustained draw: every sample at the busy ceiling.
  const double ceiling = jetson.idle_watts + jetson.decode_watts + jetson.compute_watts;
  for (const double w : trace.watts) EXPECT_NEAR(w, ceiling, 1e-6);
}

TEST(Power, DcsrSpikesPeriodically) {
  const DeviceProfile jetson = jetson_xavier_nx();
  PowerConfig cfg;
  cfg.model = sr::dcsr1_config();
  cfg.resolution = res_1080p();
  cfg.schedule = InferenceSchedule::kPerSegment;
  cfg.segment_seconds = 4.0;
  const PowerTrace trace = simulate_power(jetson, cfg, 60.0);
  const double baseline = jetson.idle_watts + jetson.decode_watts;
  int spikes = 0, quiet = 0;
  for (const double w : trace.watts) {
    if (w > baseline + 0.05) {
      ++spikes;
    } else {
      ++quiet;
    }
  }
  // Inference bursts are short, so most samples sit at the baseline.
  EXPECT_GT(spikes, 5);
  EXPECT_GT(quiet, spikes);
  EXPECT_LT(trace.peak_watts, baseline + jetson.compute_watts + 1e-9);
}

TEST(Power, EnergyOrderingDcsrNemoNas) {
  // The paper's §4: dcSR consumes the least energy, NAS the most. Measured
  // at 720p, where NEMO's per-segment bursts still fit inside a segment —
  // at 1080p NEMO's big-model inference saturates the GPU just like NAS.
  const DeviceProfile jetson = jetson_xavier_nx();
  const Resolution res = res_720p();

  PowerConfig dcsr{.model = sr::dcsr1_config(), .resolution = res,
                   .schedule = InferenceSchedule::kPerSegment};
  PowerConfig nemo{.model = sr::big_model_config(), .resolution = res,
                   .schedule = InferenceSchedule::kPerSegment};
  PowerConfig nas{.model = sr::big_model_config(), .resolution = res,
                  .schedule = InferenceSchedule::kEveryFrame};

  const double e_dcsr = simulate_power(jetson, dcsr, 300.0).total_joules;
  const double e_nemo = simulate_power(jetson, nemo, 300.0).total_joules;
  const double e_nas = simulate_power(jetson, nas, 300.0).total_joules;
  EXPECT_LT(e_dcsr, e_nemo);
  EXPECT_LT(e_nemo, e_nas);
}

TEST(Power, TraceLengthMatchesDuration) {
  const PowerTrace t = simulate_power(jetson_xavier_nx(),
                                      {.model = sr::dcsr1_config(),
                                       .resolution = res_720p()},
                                      10.0);
  EXPECT_EQ(t.watts.size(), 10u);
  EXPECT_GT(t.mean_watts, 0.0);
}

}  // namespace
}  // namespace dcsr::device
