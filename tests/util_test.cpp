#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/alloc_check.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/stats.hpp"
#include "util/file.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace dcsr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, 1000, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, GrainAtLeastRangeRunsAsOneChunk) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  pool.parallel_for(3, 10, 7, [&](std::int64_t lo, std::int64_t hi) {
    std::lock_guard lk(m);
    chunks.emplace_back(lo, hi);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::int64_t, std::int64_t>{3, 10}));
}

TEST(ThreadPool, GrainBoundsChunkSize) {
  ThreadPool pool(8);
  std::mutex m;
  std::vector<std::int64_t> sizes;
  pool.parallel_for(0, 10, 4, [&](std::int64_t lo, std::int64_t hi) {
    std::lock_guard lk(m);
    sizes.push_back(hi - lo);
  });
  // 10 / grain 4 -> at most 2 chunks, each at least 4 wide.
  ASSERT_LE(sizes.size(), 2u);
  for (const auto s : sizes) EXPECT_GE(s, 4);
}

TEST(ThreadPool, EmptyRangeNeverInvokes) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ReversedRangeThrows) {
  // end < begin used to flow silently into the chunk math; now it is a
  // caller bug reported with the offending values.
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  try {
    pool.parallel_for(7, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("begin=7"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("end=3"), std::string::npos);
  }
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, GrainBelowOneThrows) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  const auto fn = [&](std::int64_t, std::int64_t) { ++calls; };
  EXPECT_THROW(pool.parallel_for(0, 10, 0, fn), std::invalid_argument);
  EXPECT_THROW(pool.parallel_for(0, 10, -4, fn), std::invalid_argument);
  try {
    pool.parallel_for(0, 10, -4, fn);
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("-4"), std::string::npos);
  }
  EXPECT_EQ(calls.load(), 0);
  // Validation applies to the checked overload too, before any claim runs.
  EXPECT_THROW(pool.parallel_for_writes(
                   0, 10, 0,
                   [](std::int64_t, std::int64_t) { return WriteSpan{}; }, fn),
               std::invalid_argument);
  EXPECT_THROW(pool.parallel_for_writes(
                   9, 2, 1,
                   [](std::int64_t, std::int64_t) { return WriteSpan{}; }, fn),
               std::invalid_argument);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  bool ran = false;
  pool.parallel_for(0, 100, 1, [&](std::int64_t, std::int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::int64_t lo, std::int64_t) {
                          if (lo == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed region.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, 1, [&](std::int64_t lo, std::int64_t hi) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInlineOnChunkThread) {
  ThreadPool pool(4);
  pool.parallel_for(0, 4, 1, [&](std::int64_t, std::int64_t) {
    const auto outer_thread = std::this_thread::get_id();
    pool.parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
      EXPECT_EQ(std::this_thread::get_id(), outer_thread);
    });
  });
}

TEST(ThreadPool, EnvVariableControlsDefaultSize) {
  ASSERT_EQ(setenv("DCSR_THREADS", "5", 1), 0);
  EXPECT_EQ(thread_count_from_env(), 5);
  ASSERT_EQ(setenv("DCSR_THREADS", "0", 1), 0);
  EXPECT_EQ(thread_count_from_env(), 1);  // clamps to serial
  ASSERT_EQ(setenv("DCSR_THREADS", "garbage", 1), 0);
  EXPECT_GE(thread_count_from_env(), 1);  // falls back to hardware
  ASSERT_EQ(unsetenv("DCSR_THREADS"), 0);
  EXPECT_GE(thread_count_from_env(), 1);
}

TEST(ThreadPool, EnvRejectsPartialAndOverflowValues) {
  // The hardware fallback this process would use with no override at all.
  ASSERT_EQ(unsetenv("DCSR_THREADS"), 0);
  const int fallback = thread_count_from_env();

  // Trailing garbage must be rejected outright, not parsed as its numeric
  // prefix: "4abc" is a typo, and silently running 4 threads would hide it.
  ASSERT_EQ(setenv("DCSR_THREADS", "4abc", 1), 0);
  EXPECT_EQ(thread_count_from_env(), fallback);

  // Values that overflow long/int must be rejected, not wrapped: the old
  // parser cast LONG_MAX to int and ended up at 1 by accident.
  ASSERT_EQ(setenv("DCSR_THREADS", "999999999999", 1), 0);
  EXPECT_EQ(thread_count_from_env(), fallback);
  ASSERT_EQ(setenv("DCSR_THREADS", "99999999999999999999999999", 1), 0);
  EXPECT_EQ(thread_count_from_env(), fallback);
  ASSERT_EQ(setenv("DCSR_THREADS", "2147483648", 1), 0);  // INT_MAX + 1
  EXPECT_EQ(thread_count_from_env(), fallback);

  // A fully-parsed negative value is valid input and clamps to the
  // documented serial floor of 1, exactly like "0".
  ASSERT_EQ(setenv("DCSR_THREADS", "-7", 1), 0);
  EXPECT_EQ(thread_count_from_env(), 1);

  // Empty string is not a number.
  ASSERT_EQ(setenv("DCSR_THREADS", "", 1), 0);
  EXPECT_EQ(thread_count_from_env(), fallback);

  ASSERT_EQ(unsetenv("DCSR_THREADS"), 0);
  EXPECT_EQ(thread_count_from_env(), fallback);
}

TEST(ThreadPool, DefaultPoolOverride) {
  const int saved = default_thread_count();
  set_default_pool_threads(3);
  EXPECT_EQ(default_thread_count(), 3);
  std::vector<int> hits(64, 0);
  parallel_for(0, 64, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
  set_default_pool_threads(saved);
}

// RAII toggle for the write-claim checker so a failing assertion cannot leak
// the forced state into later tests.
class CheckGuard {
 public:
  explicit CheckGuard(bool on) : saved_(parallel_check_enabled()) {
    set_parallel_check_enabled(on);
  }
  ~CheckGuard() { set_parallel_check_enabled(saved_); }

 private:
  bool saved_;
};

TEST(ParallelForWrites, DisjointClaimsRunClean) {
  CheckGuard check(true);
  ThreadPool pool(4);
  std::vector<float> out(1024, 0.0f);
  pool.parallel_for_writes(
      0, 1024, 1,
      [&](std::int64_t lo, std::int64_t hi) {
        return span_of(out.data() + lo, static_cast<std::size_t>(hi - lo));
      },
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
          out[static_cast<std::size_t>(i)] = static_cast<float>(i);
      },
      "util_test:disjoint");
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<float>(i));
}

TEST(ParallelForWrites, OverlappingClaimsAreDetected) {
  CheckGuard check(true);
  ThreadPool pool(4);
  std::vector<float> out(1024, 0.0f);
  // Deliberate contract violation: every chunk claims the WHOLE output. The
  // detector must fire before any chunk runs, naming the site in its
  // diagnostic — this is the negative test for the DCSR_CHECKED build.
  std::atomic<int> calls{0};
  try {
    pool.parallel_for_writes(
        0, 1024, 1,
        [&](std::int64_t, std::int64_t) {
          return span_of(out.data(), out.size());
        },
        [&](std::int64_t, std::int64_t) { ++calls; },
        "util_test:deliberate_overlap");
    FAIL() << "expected ParallelOverlapError";
  } catch (const ParallelOverlapError& e) {
    EXPECT_NE(std::string(e.what()).find("util_test:deliberate_overlap"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("disjoint"), std::string::npos);
  }
  EXPECT_EQ(calls.load(), 0) << "claims must be validated before dispatch";
}

TEST(ParallelForWrites, PartialOverlapBetweenNeighbouringChunksIsDetected) {
  CheckGuard check(true);
  ThreadPool pool(4);
  std::vector<float> out(1024, 0.0f);
  // Off-by-one span arithmetic: each chunk claims one element past its own
  // slice — the classic fencepost race.
  EXPECT_THROW(pool.parallel_for_writes(
                   0, 1024, 1,
                   [&](std::int64_t lo, std::int64_t hi) {
                     const std::size_t n = std::min<std::size_t>(
                         static_cast<std::size_t>(hi - lo) + 1,
                         out.size() - static_cast<std::size_t>(lo));
                     return span_of(out.data() + lo, n);
                   },
                   [](std::int64_t, std::int64_t) {},
                   "util_test:fencepost"),
               ParallelOverlapError);
}

TEST(ParallelForWrites, CheckerOffNeverCallsClaim) {
  CheckGuard check(false);
  ThreadPool pool(4);
  std::vector<float> out(256, 0.0f);
  std::atomic<int> claims{0};
  pool.parallel_for_writes(
      0, 256, 1,
      [&](std::int64_t, std::int64_t) {
        ++claims;
        return span_of(out.data(), out.size());  // would overlap if checked
      },
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
          out[static_cast<std::size_t>(i)] = 1.0f;
      },
      "util_test:unchecked");
  EXPECT_EQ(claims.load(), 0);
  for (const float v : out) EXPECT_EQ(v, 1.0f);
}

TEST(ParallelForWrites, NestedRegionsDoNotFalsePositive) {
  CheckGuard check(true);
  ThreadPool pool(4);
  std::vector<float> out(256, 0.0f);
  // The nested region's claims fall entirely inside the enclosing chunk's
  // claim — legal (same thread, no added concurrency) and must not trip the
  // detector.
  pool.parallel_for_writes(
      0, 4, 1,
      [&](std::int64_t lo, std::int64_t hi) {
        return span_of(out.data() + lo * 64, static_cast<std::size_t>(hi - lo) * 64);
      },
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t item = lo; item < hi; ++item) {
          float* base = out.data() + item * 64;
          pool.parallel_for_writes(
              0, 64, 1,
              [&](std::int64_t l, std::int64_t h) {
                return span_of(base + l, static_cast<std::size_t>(h - l));
              },
              [&](std::int64_t l, std::int64_t h) {
                for (std::int64_t i = l; i < h; ++i) base[i] += 1.0f;
              },
              "util_test:nested_inner");
        }
      },
      "util_test:nested_outer");
  for (const float v : out) EXPECT_EQ(v, 1.0f);
}

TEST(ParallelForWrites, ConcurrentRegionsFromDifferentThreadsCrossCheck) {
  CheckGuard check(true);
  std::vector<float> out(128, 0.0f);
  ThreadPool holder_pool(1), intruder_pool(1);
  std::atomic<bool> registered{false}, release{false};

  // A region's claims stay registered for its whole lifetime, so a second
  // region claiming the same bytes from another thread must be rejected
  // while the first is still in flight — deterministically, because the
  // holder blocks inside its chunk until released.
  std::thread holder([&] {
    holder_pool.parallel_for_writes(
        0, 128, 1,
        [&](std::int64_t, std::int64_t) {
          return span_of(out.data(), out.size());
        },
        [&](std::int64_t, std::int64_t) {
          registered.store(true);
          while (!release.load()) std::this_thread::yield();
        },
        "util_test:holder");
  });
  while (!registered.load()) std::this_thread::yield();

  EXPECT_THROW(intruder_pool.parallel_for_writes(
                   0, 128, 1,
                   [&](std::int64_t, std::int64_t) {
                     return span_of(out.data(), out.size());
                   },
                   [](std::int64_t, std::int64_t) {},
                   "util_test:intruder"),
               ParallelOverlapError);

  release.store(true);
  holder.join();

  // With the holder gone its claims are withdrawn; the same region is legal.
  intruder_pool.parallel_for_writes(
      0, 128, 1,
      [&](std::int64_t, std::int64_t) {
        return span_of(out.data(), out.size());
      },
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
          out[static_cast<std::size_t>(i)] = 2.0f;
      },
      "util_test:after_release");
  for (const float v : out) EXPECT_EQ(v, 2.0f);
}

TEST(ParallelForWrites, EmptyRangeNeverClaims) {
  CheckGuard check(true);
  ThreadPool pool(2);
  std::atomic<int> claims{0}, calls{0};
  pool.parallel_for_writes(
      5, 5, 1,
      [&](std::int64_t, std::int64_t) {
        ++claims;
        return WriteSpan{};
      },
      [&](std::int64_t, std::int64_t) { ++calls; }, "util_test:empty");
  EXPECT_EQ(claims.load(), 0);
  EXPECT_EQ(calls.load(), 0);
}

TEST(Serialize, RoundTripsScalars) {
  ByteWriter w;
  w.write_u8(0xab);
  w.write_u16(0x1234);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x0123456789abcdefULL);
  w.write_i32(-42);
  w.write_f32(3.25f);
  w.write_f64(-1.5e-20);
  w.write_string("dcSR");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 0xab);
  EXPECT_EQ(r.read_u16(), 0x1234);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_EQ(r.read_f32(), 3.25f);
  EXPECT_EQ(r.read_f64(), -1.5e-20);
  EXPECT_EQ(r.read_string(), "dcSR");
  EXPECT_TRUE(r.done());
}

TEST(Serialize, TruncatedInputThrows) {
  ByteWriter w;
  w.write_u16(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u8(), 0);
  EXPECT_THROW(r.read_u8(), std::out_of_range);
}

TEST(Serialize, FloatSpanRoundTrip) {
  const float xs[4] = {1.0f, -2.5f, 0.0f, 1e-8f};
  ByteWriter w;
  w.write_f32_span(xs, 4);
  ByteReader r(w.bytes());
  float ys[4];
  r.read_f32_span(ys, 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(xs[i], ys[i]);
}

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.0);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.0));
}

TEST(Stats, EmptyMeanIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, Percentiles) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, EmpiricalCdfMonotone) {
  const std::vector<double> samples{1, 2, 2, 3, 10};
  const std::vector<double> probes{0, 1, 2, 5, 10};
  const auto cdf = empirical_cdf(samples, probes);
  ASSERT_EQ(cdf.size(), probes.size());
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.2);
  EXPECT_DOUBLE_EQ(cdf[2], 0.6);
  EXPECT_DOUBLE_EQ(cdf[3], 0.8);
  EXPECT_DOUBLE_EQ(cdf[4], 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
}

TEST(Stats, ArgmaxArgmin) {
  const std::vector<double> xs{3, 9, 1, 9};
  EXPECT_EQ(argmax(xs), 1u);
  EXPECT_EQ(argmin(xs), 2u);
}

TEST(Stats, ExtremaThrowOnEmptySpan) {
  // Regression: these used to dereference end() of an empty span (UB that
  // happened to return garbage); now they refuse.
  const std::vector<double> empty;
  EXPECT_THROW(min_of(empty), std::invalid_argument);
  EXPECT_THROW(max_of(empty), std::invalid_argument);
  EXPECT_THROW(argmax(empty), std::invalid_argument);
  EXPECT_THROW(argmin(empty), std::invalid_argument);

  // One element is the smallest valid input.
  const std::vector<double> one{4.5};
  EXPECT_EQ(min_of(one), 4.5);
  EXPECT_EQ(max_of(one), 4.5);
  EXPECT_EQ(argmax(one), 0u);
  EXPECT_EQ(argmin(one), 0u);
}

TEST(Table, RendersAlignedRowsAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1\nb,22\n");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.to_csv(), "a,b,c\nx,,\n");
}

TEST(Fmt, FormatsDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(File, RoundTripsBytes) {
  const std::string path = ::testing::TempDir() + "dcsr_util_file_test.bin";
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 31);
  write_file(path, data);
  EXPECT_EQ(read_file(path), data);
  // Overwrite with shorter content truncates.
  write_file(path, {1, 2, 3});
  EXPECT_EQ(read_file(path).size(), 3u);
  std::remove(path.c_str());
}

TEST(File, EmptyFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "dcsr_util_file_empty.bin";
  write_file(path, {});
  EXPECT_TRUE(read_file(path).empty());
  std::remove(path.c_str());
}

TEST(File, MissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/definitely/missing.bin"),
               std::runtime_error);
  EXPECT_THROW(write_file("/nonexistent/definitely/missing.bin", {1}),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Hardened environment parsing (util/env.hpp). Each test uses its own
// variable name so parallel ctest shards never race on shared state.

TEST(Env, RawReturnsValueOrNull) {
  ::setenv("DCSR_TEST_ENV_RAW", "hello", 1);
  ASSERT_NE(env_raw("DCSR_TEST_ENV_RAW"), nullptr);
  EXPECT_STREQ(env_raw("DCSR_TEST_ENV_RAW"), "hello");
  ::unsetenv("DCSR_TEST_ENV_RAW");
  EXPECT_EQ(env_raw("DCSR_TEST_ENV_RAW"), nullptr);
}

TEST(Env, IntAcceptsCompleteIntegersOnly) {
  const char* k = "DCSR_TEST_ENV_INT";
  ::setenv(k, "42", 1);
  EXPECT_EQ(env_int(k), 42);
  ::setenv(k, "-7", 1);
  EXPECT_EQ(env_int(k), -7);
  // Rejected completely, never partially accepted.
  for (const char* bad : {"4abc", "", " 4", "4 ", "0x10", "3.5",
                          "999999999999999999999999", "abc"}) {
    ::setenv(k, bad, 1);
    EXPECT_FALSE(env_int(k).has_value()) << "value: '" << bad << "'";
  }
  ::unsetenv(k);
  EXPECT_FALSE(env_int(k).has_value());
}

TEST(Env, BoolParsesExactTokensOnly) {
  const char* k = "DCSR_TEST_ENV_BOOL";
  for (const char* t : {"1", "on", "true"}) {
    ::setenv(k, t, 1);
    EXPECT_EQ(env_bool(k), true) << "value: '" << t << "'";
  }
  for (const char* f : {"0", "off", "false"}) {
    ::setenv(k, f, 1);
    EXPECT_EQ(env_bool(k), false) << "value: '" << f << "'";
  }
  for (const char* bad : {"ON", "True", "yes", "2", "", "on "}) {
    ::setenv(k, bad, 1);
    EXPECT_FALSE(env_bool(k).has_value()) << "value: '" << bad << "'";
  }
  ::unsetenv(k);
  EXPECT_FALSE(env_bool(k).has_value());
}

#if DCSR_ALLOC_CHECK

// ---------------------------------------------------------------------------
// Hot-path heap auditor. These only compile when the interposer is linked
// (checked builds); the tests that expect a throw keep gtest assertions
// *outside* guarded scopes, because a failing EXPECT streams into heap-
// allocated messages. The volatile sink stops the compiler from eliding
// new/delete pairs (which C++ permits even for replaced operators).

void* volatile g_alloc_sink = nullptr;

TEST(CheckedAlloc, AllocationInsideGuardThrowsNamingSite) {
  set_alloc_check_enabled(true);
  bool threw = false;
  const char* site = nullptr;
  std::size_t bytes = 0;
  int depth = -1;
  bool what_names_site = false;
  {
    HotPathGuard guard("tests/util_test.cpp:deliberate-violation");
    try {
      int* p = new int[8];  // deliberate hot-path allocation
      g_alloc_sink = p;
      delete[] p;
    } catch (const HotPathAllocError& e) {
      threw = true;
      site = e.site();  // string literal: outlives the exception
      bytes = e.bytes();
      depth = e.depth();
      what_names_site =
          std::strstr(e.what(), "tests/util_test.cpp:deliberate-violation") !=
          nullptr;
    }
  }
  ASSERT_TRUE(threw);
  EXPECT_STREQ(site, "tests/util_test.cpp:deliberate-violation");
  EXPECT_EQ(bytes, 8 * sizeof(int));
  EXPECT_EQ(depth, 1);
  EXPECT_TRUE(what_names_site);
}

TEST(CheckedAlloc, ViolationNamesInnermostOfNestedGuards) {
  set_alloc_check_enabled(true);
  bool threw = false;
  const char* site = nullptr;
  int depth = -1;
  {
    HotPathGuard outer("outer-site");
    {
      HotPathGuard inner("inner-site");
      try {
        g_alloc_sink = new int;
      } catch (const HotPathAllocError& e) {
        threw = true;
        site = e.site();
        depth = e.depth();
      }
    }
  }
  ASSERT_TRUE(threw);
  EXPECT_STREQ(site, "inner-site");
  EXPECT_EQ(depth, 2);
}

TEST(CheckedAlloc, DepthAndSiteTrackNestingExceptionSafely) {
  // Enforcement off: this test exercises the guard *stack*, and gtest's own
  // assertion machinery must stay free to allocate inside the scopes.
  set_alloc_check_enabled(false);
  EXPECT_EQ(hot_path_depth(), 0);
  EXPECT_EQ(active_hot_path(), nullptr);
  {
    HotPathGuard a("site-a");
    EXPECT_EQ(hot_path_depth(), 1);
    EXPECT_STREQ(active_hot_path(), "site-a");
    {
      HotPathGuard b("site-b");
      EXPECT_EQ(hot_path_depth(), 2);
      EXPECT_STREQ(active_hot_path(), "site-b");
    }
    EXPECT_EQ(hot_path_depth(), 1);
    EXPECT_STREQ(active_hot_path(), "site-a");
  }
  EXPECT_EQ(hot_path_depth(), 0);
  // Guards pop during stack unwinding too.
  try {
    HotPathGuard g("site-unwind");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(hot_path_depth(), 0);
  EXPECT_EQ(active_hot_path(), nullptr);
  set_alloc_check_enabled(true);
}

TEST(CheckedAlloc, AllowScopeSanctionsAndStillCountsRaw) {
  set_alloc_check_enabled(true);
  const AllocStats before = thread_alloc_stats();
  {
    HotPathGuard guard("sanctioned-site");
    AllocAllowScope allow;
    int* p = new int[16];
    g_alloc_sink = p;
    delete[] p;
  }
  const AllocStats after = thread_alloc_stats();
  EXPECT_EQ(after.allocs - before.allocs, 1u);
  EXPECT_EQ(after.frees - before.frees, 1u);
  EXPECT_EQ(after.sanctioned - before.sanctioned, 1u);
  EXPECT_GE(after.bytes - before.bytes, 16 * sizeof(int));
}

TEST(CheckedAlloc, UnguardedAllocationCountsButIsNotSanctioned) {
  set_alloc_check_enabled(true);
  const AllocStats before = thread_alloc_stats();
  int* p = new int[4];
  g_alloc_sink = p;
  delete[] p;
  const AllocStats after = thread_alloc_stats();
  EXPECT_EQ(after.allocs - before.allocs, 1u);
  EXPECT_EQ(after.frees - before.frees, 1u);
  EXPECT_EQ(after.sanctioned - before.sanctioned, 0u);
}

TEST(CheckedAlloc, CountersSurviveFailedAcquires) {
  // enforce() runs before malloc: a violation never allocates, so the
  // counters after the failed acquire are exactly the counters before it.
  set_alloc_check_enabled(true);
  AllocStats before{}, after{};
  bool threw = false;
  {
    HotPathGuard guard("failed-acquire");
    before = thread_alloc_stats();
    try {
      g_alloc_sink = new int[32];
    } catch (const HotPathAllocError&) {
      threw = true;
    }
    after = thread_alloc_stats();
  }
  ASSERT_TRUE(threw);
  EXPECT_EQ(after.allocs, before.allocs);
  EXPECT_EQ(after.bytes, before.bytes);
  EXPECT_EQ(after.frees, before.frees);
  // The thread remains fully usable afterwards: allocation outside the
  // guard succeeds and counts.
  std::vector<int> v(64, 1);
  EXPECT_EQ(v.size(), 64u);
  EXPECT_GT(thread_alloc_stats().allocs, after.allocs);
}

TEST(CheckedAlloc, EnforcementCanBeToggledAtRuntime) {
  set_alloc_check_enabled(false);
  {
    HotPathGuard guard("enforcement-off");
    int* p = new int[4];  // would throw if enforcement were live
    g_alloc_sink = p;
    delete[] p;
  }
  set_alloc_check_enabled(true);
  bool threw = false;
  {
    HotPathGuard guard("enforcement-on");
    try {
      g_alloc_sink = new int[4];
    } catch (const HotPathAllocError&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
  EXPECT_TRUE(alloc_check_enabled());
}

TEST(CheckedAlloc, ErrorPathPatternAllowsRealDiagnosticsThroughGuards) {
  // The repo-wide error-path idiom: `{ AllocAllowScope allow; throw X; }`.
  // The real exception (which allocates its message) must escape the guard
  // untranslated rather than being masked by HotPathAllocError.
  set_alloc_check_enabled(true);
  bool caught_real_error = false;
  {
    HotPathGuard guard("error-path");
    try {
      AllocAllowScope allow;
      throw std::runtime_error("a diagnostic with a heap-allocated message "
                               "long enough to defeat SSO everywhere");
    } catch (const std::runtime_error&) {
      caught_real_error = true;
    }
  }
  EXPECT_TRUE(caught_real_error);
  EXPECT_EQ(hot_path_depth(), 0);
}

#endif  // DCSR_ALLOC_CHECK

}  // namespace
}  // namespace dcsr
