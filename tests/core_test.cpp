#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/client_pipeline.hpp"
#include "core/server_pipeline.hpp"
#include "sr/min_model.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "stream/session.hpp"
#include "util/thread_pool.hpp"
#include "video/genres.hpp"

namespace dcsr::core {
namespace {

// Small-but-real configuration used across these tests: tiny models and few
// iterations so the full pipeline runs in seconds.
ServerConfig tiny_config() {
  ServerConfig cfg;
  cfg.codec.crf = 51;  // the paper's operating point, where SR gains are large
  cfg.codec.intra_period = 10;
  cfg.vae = {.input_size = 16, .latent_dim = 4, .base_channels = 4, .hidden = 32};
  cfg.vae_epochs = 8;
  cfg.micro = {.n_filters = 8, .n_resblocks = 2, .scale = 1};
  cfg.big = {.n_filters = 32, .n_resblocks = 4, .scale = 1};
  cfg.k_max = 5;
  cfg.training = {.iterations = 400, .patch_size = 24, .batch_size = 2, .lr = 3e-3};
  cfg.seed = 3;
  return cfg;
}

std::unique_ptr<SyntheticVideo> tiny_video(std::uint64_t seed = 11) {
  // Music-video pacing (short shots, strong recurrence) guarantees several
  // segments and shared clusters even in a 30-second clip.
  return make_genre_video(Genre::kMusicVideo, seed, 64, 48, 30.0, 15.0);
}

// The pipeline runs take seconds; share one run across assertions.
struct PipelineFixture : ::testing::Test {
  static void SetUpTestSuite() {
    video = tiny_video().release();
    result = new ServerResult(run_server_pipeline(*video, tiny_config()));
  }
  static void TearDownTestSuite() {
    delete result;
    delete video;
    result = nullptr;
    video = nullptr;
  }
  static SyntheticVideo* video;
  static ServerResult* result;
};
SyntheticVideo* PipelineFixture::video = nullptr;
ServerResult* PipelineFixture::result = nullptr;

TEST_F(PipelineFixture, SegmentsCoverVideo) {
  int total = 0;
  for (const auto& s : result->segments) total += s.frame_count;
  EXPECT_EQ(total, video->frame_count());
  EXPECT_EQ(result->encoded.frame_count(), video->frame_count());
}

TEST_F(PipelineFixture, OneLabelPerSegmentWithinK) {
  ASSERT_EQ(result->labels.size(), result->segments.size());
  for (const int l : result->labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, result->k);
  }
}

TEST_F(PipelineFixture, OneModelPerCluster) {
  EXPECT_EQ(result->micro_models.size(), static_cast<std::size_t>(result->k));
  for (const auto& m : result->micro_models)
    EXPECT_EQ(m->config().n_filters, 8);
  EXPECT_GT(result->micro_model_bytes, 0u);
  EXPECT_GT(result->train_flops, 0u);
}

TEST_F(PipelineFixture, KRespectsBounds) {
  const ServerConfig cfg = tiny_config();
  EXPECT_GE(result->k, 2);
  EXPECT_LE(result->k, cfg.k_max);
  const int size_bound = sr::max_micro_models(cfg.big, cfg.micro);
  EXPECT_LE(result->k, size_bound);
  EXPECT_FALSE(result->silhouette_curve.empty());
}

TEST_F(PipelineFixture, ManifestIsConsistent) {
  const stream::Manifest m = result->manifest();
  EXPECT_EQ(m.segments.size(), result->segments.size());
  EXPECT_EQ(m.model_bytes.size(), static_cast<std::size_t>(result->k));
  for (const auto b : m.model_bytes) EXPECT_EQ(b, result->micro_model_bytes);
  EXPECT_EQ(m.total_video_bytes(), result->encoded.size_bytes());
}

TEST_F(PipelineFixture, DcsrPlaybackBeatsLow) {
  // The headline quality property: in-loop micro-model enhancement must
  // improve PSNR over the degraded stream.
  PlaybackOptions opts;
  const PlaybackResult low = play_low(result->encoded, *video, opts);
  const PlaybackResult dcsr =
      play_dcsr(result->encoded, result->labels, result->micro_models, *video, opts);
  EXPECT_EQ(low.frame_psnr.size(), static_cast<std::size_t>(video->frame_count()));
  EXPECT_GT(dcsr.mean_psnr, low.mean_psnr + 0.15);
  EXPECT_GE(dcsr.mean_ssim, low.mean_ssim - 5e-3);
}

TEST_F(PipelineFixture, RecurringSegmentsShareModels) {
  // News content revisits scenes, so there must be fewer clusters than
  // segments — the redundancy dcSR monetises.
  EXPECT_LT(static_cast<std::size_t>(result->k), result->labels.size());
  // And the session must hit the cache at least once.
  const auto session = stream::simulate_session(result->manifest());
  EXPECT_GT(session.cache_hits, 0);
}

TEST(CollectIFramePairs, PairsMatchSegmentIFrames) {
  const auto video = tiny_video(21);
  ServerConfig cfg = tiny_config();
  const auto segments = split::variable_segments(*video, cfg.segmenter);
  const auto encoded = codec::Encoder(cfg.codec).encode(*video, segments);
  const auto iframes = collect_iframe_pairs(*video, encoded, segments);
  ASSERT_EQ(iframes.size(), segments.size());
  for (std::size_t s = 0; s < iframes.size(); ++s) {
    ASSERT_GE(iframes[s].pairs.size(), 1u);
    const auto& p = iframes[s].pairs.front();
    EXPECT_EQ(p.lo.width(), video->width());
    // The lo frame is the decoded (degraded) I frame; it must resemble but
    // not equal the original.
    const double q = psnr(p.lo, p.hi);
    EXPECT_GT(q, 10.0);
    EXPECT_LT(q, 60.0);
  }
}

TEST(Baselines, BigModelTrainsAndEnhances) {
  const auto video = tiny_video(22);
  ServerConfig scfg = tiny_config();
  const auto segments = split::variable_segments(*video, scfg.segmenter);
  const auto encoded = codec::Encoder(scfg.codec).encode(*video, segments);

  BaselineConfig bcfg;
  bcfg.big = {.n_filters = 8, .n_resblocks = 2, .scale = 1};
  bcfg.training_frames = 6;
  bcfg.training = {.iterations = 500, .patch_size = 24, .batch_size = 2, .lr = 3e-3};
  const BaselineResult base = train_big_model(*video, encoded, bcfg);
  ASSERT_NE(base.model, nullptr);
  EXPECT_EQ(base.model_bytes, sr::edsr_model_bytes(bcfg.big));
  EXPECT_GT(base.train_flops, 0u);

  PlaybackOptions opts;
  opts.nas_eval_stride = 17;
  const PlaybackResult low = play_low(encoded, *video, opts);
  const PlaybackResult nemo = play_nemo(encoded, *base.model, *video, opts);
  const PlaybackResult nas = play_nas(encoded, *base.model, *video, opts);
  EXPECT_GT(nemo.mean_psnr, low.mean_psnr);
  EXPECT_GT(nas.mean_psnr, low.mean_psnr);
  // NAS evaluates a strided subset only.
  EXPECT_LT(nas.frame_psnr.size(), low.frame_psnr.size());
}

TEST(Baselines, CollectWholeVideoPairsSamplesUniformly) {
  const auto video = tiny_video(23);
  ServerConfig scfg = tiny_config();
  const auto segments = split::variable_segments(*video, scfg.segmenter);
  const auto encoded = codec::Encoder(scfg.codec).encode(*video, segments);
  const auto pairs = collect_whole_video_pairs(*video, encoded, 8);
  EXPECT_GE(pairs.size(), 6u);
  EXPECT_LE(pairs.size(), 8u);
}

TEST(ClientPipeline, EnhanceReferenceFrameRejectsUpscalers) {
  Rng rng(1);
  sr::Edsr upscaler({.n_filters = 4, .n_resblocks = 1, .scale = 2}, rng);
  FrameYUV frame(32, 32);
  EXPECT_THROW(enhance_reference_frame(frame, upscaler), std::invalid_argument);
}

// Shared setup for the playback-path tests below: a short clip, two fixed
// segments, and untrained (but deterministic) models — quality is irrelevant
// here, only which frames get measured and which bits come out.
struct PlaybackSetup {
  std::unique_ptr<SyntheticVideo> video;
  codec::EncodedVideo encoded;
  std::vector<std::unique_ptr<sr::Edsr>> models;
  std::vector<int> labels;
};

PlaybackSetup make_playback_setup(std::uint64_t seed) {
  PlaybackSetup s;
  s.video = make_genre_video(Genre::kNews, seed, 48, 32, 4.0, 10.0);
  ServerConfig cfg = tiny_config();
  const auto segments = split::fixed_segments(s.video->frame_count(), 20);
  s.encoded = codec::Encoder(cfg.codec).encode(*s.video, segments);
  Rng rng(7);
  s.models.push_back(std::make_unique<sr::Edsr>(
      sr::EdsrConfig{.n_filters = 4, .n_resblocks = 1, .scale = 1}, rng));
  s.labels.assign(s.encoded.segments.size(), 0);
  return s;
}

TEST(ClientPipeline, AllPathsMeasureSsimOnSameFrames) {
  // SSIM striding is keyed off the display index, so every playback path —
  // including NAS, which visits only a sampled subset — must report SSIM for
  // the same set of frames whenever ssim_stride is a multiple of
  // nas_eval_stride. (A visit-count stride used to make NAS's SSIM set drift
  // with its sampling rate.)
  const PlaybackSetup s = make_playback_setup(31);
  PlaybackOptions opts;
  opts.nas_eval_stride = 3;
  opts.ssim_stride = 6;

  const sr::Edsr& model = *s.models[0];
  const PlaybackResult low = play_low(s.encoded, *s.video, opts);
  const PlaybackResult dcsr =
      play_dcsr(s.encoded, s.labels, s.models, *s.video, opts);
  const PlaybackResult nemo = play_nemo(s.encoded, model, *s.video, opts);
  const PlaybackResult nas = play_nas(s.encoded, model, *s.video, opts);
  const AnchorPlaybackResult anchors = play_dcsr_anchors(
      s.encoded, s.labels, s.models, *s.video, /*anchor_period=*/4, opts);

  ASSERT_FALSE(low.ssim_frame_index.empty());
  EXPECT_EQ(low.ssim_frame_index.size(), low.frame_ssim.size());
  for (const int idx : low.ssim_frame_index) EXPECT_EQ(idx % opts.ssim_stride, 0);

  EXPECT_EQ(dcsr.ssim_frame_index, low.ssim_frame_index);
  EXPECT_EQ(nemo.ssim_frame_index, low.ssim_frame_index);
  EXPECT_EQ(nas.ssim_frame_index, low.ssim_frame_index);
  EXPECT_EQ(anchors.playback.ssim_frame_index, low.ssim_frame_index);
}

TEST(ClientPipeline, PlaybackBitIdenticalAcrossThreadCounts) {
  // The client's new concurrency (segment-pipelined decode, fanned-out NAS
  // enhancement, parallel im2col) must never change results: same floats for
  // DCSR_THREADS=1 and =4.
  const PlaybackSetup s = make_playback_setup(32);
  PlaybackOptions opts;
  opts.nas_eval_stride = 3;

  const int saved_threads = default_thread_count();
  const auto run_all = [&](int threads) {
    set_default_pool_threads(threads);
    std::vector<PlaybackResult> out;
    out.push_back(play_dcsr(s.encoded, s.labels, s.models, *s.video, opts));
    out.push_back(play_nas(s.encoded, *s.models[0], *s.video, opts));
    out.push_back(play_dcsr_anchors(s.encoded, s.labels, s.models, *s.video,
                                    /*anchor_period=*/4, opts)
                      .playback);
    return out;
  };
  const auto serial = run_all(1);
  const auto threaded = run_all(4);
  set_default_pool_threads(saved_threads);

  for (std::size_t p = 0; p < serial.size(); ++p) {
    ASSERT_EQ(serial[p].frame_psnr.size(), threaded[p].frame_psnr.size());
    for (std::size_t i = 0; i < serial[p].frame_psnr.size(); ++i)
      EXPECT_EQ(serial[p].frame_psnr[i], threaded[p].frame_psnr[i])
          << "path " << p << " frame " << i;
    ASSERT_EQ(serial[p].frame_ssim.size(), threaded[p].frame_ssim.size());
    for (std::size_t i = 0; i < serial[p].frame_ssim.size(); ++i)
      EXPECT_EQ(serial[p].frame_ssim[i], threaded[p].frame_ssim[i])
          << "path " << p << " ssim sample " << i;
  }
}

TEST(ClientPipeline, PlayDcsrValidatesLabels) {
  const auto video = tiny_video(24);
  ServerConfig cfg = tiny_config();
  // Fixed split guarantees several segments regardless of content.
  const auto segments = split::fixed_segments(video->frame_count(), 40);
  ASSERT_GE(segments.size(), 2u);
  const auto encoded = codec::Encoder(cfg.codec).encode(*video, segments);
  std::vector<std::unique_ptr<sr::Edsr>> models;
  Rng rng(2);
  models.push_back(std::make_unique<sr::Edsr>(cfg.micro, rng));
  // Wrong label count.
  EXPECT_THROW(play_dcsr(encoded, {0}, models, *video), std::invalid_argument);
  // Label out of range.
  std::vector<int> bad(encoded.segments.size(), 5);
  EXPECT_THROW(play_dcsr(encoded, bad, models, *video), std::invalid_argument);
}

}  // namespace
}  // namespace dcsr::core
