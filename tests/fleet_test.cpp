#include <gtest/gtest.h>

#include <cstdint>

#include "stream/fleet.hpp"
#include "stream/workload.hpp"
#include "util/alloc_check.hpp"
#include "util/thread_pool.hpp"

namespace dcsr::stream {
namespace {

// Small-but-nontrivial fleet the tests can run in milliseconds.
FleetConfig small_fleet() {
  FleetConfig cfg;
  cfg.workload.sessions = 3000;
  cfg.workload.videos = 120;
  cfg.workload.global_clusters = 96;
  cfg.workload.horizon_seconds = 7200.0;
  cfg.edge_budget_bytes = 4ull << 20;
  cfg.seed = 11;
  return cfg;
}

void expect_summaries_identical(const FleetSummary& a, const FleetSummary& b) {
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.aborted_dead_network, b.aborted_dead_network);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.video_bytes, b.video_bytes);
  EXPECT_EQ(a.model_bytes_last_mile, b.model_bytes_last_mile);
  EXPECT_EQ(a.model_bytes_origin, b.model_bytes_origin);
  EXPECT_EQ(a.client_hits, b.client_hits);
  EXPECT_EQ(a.client_misses, b.client_misses);
  EXPECT_EQ(a.edge_hits, b.edge_hits);
  EXPECT_EQ(a.edge_misses, b.edge_misses);
  EXPECT_EQ(a.edge_evictions, b.edge_evictions);
  EXPECT_EQ(a.edge_bypasses, b.edge_bypasses);
  EXPECT_EQ(a.edge_resident_bytes, b.edge_resident_bytes);
  // Bit-identical, not approximately equal: the determinism contract.
  EXPECT_EQ(a.fetch_latency_p50_s, b.fetch_latency_p50_s);
  EXPECT_EQ(a.fetch_latency_p99_s, b.fetch_latency_p99_s);
  EXPECT_EQ(a.startup_p50_s, b.startup_p50_s);
  EXPECT_EQ(a.startup_p99_s, b.startup_p99_s);
  EXPECT_EQ(a.rebuffer_p50_s, b.rebuffer_p50_s);
  EXPECT_EQ(a.rebuffer_p99_s, b.rebuffer_p99_s);
  EXPECT_EQ(a.mean_quality_db, b.mean_quality_db);
  EXPECT_EQ(a.mean_rung, b.mean_rung);
  // The per-event heap accounting is part of the determinism contract too:
  // the fleet-smoke leg diffs it byte-for-byte across DCSR_THREADS.
  EXPECT_EQ(a.advance_heap_allocs, b.advance_heap_allocs);
  EXPECT_EQ(a.advance_heap_allocs_sanctioned, b.advance_heap_allocs_sanctioned);
  // SR serving stats, same contract.
  EXPECT_EQ(a.sr_frames, b.sr_frames);
  EXPECT_EQ(a.sr_batches, b.sr_batches);
  EXPECT_EQ(a.sr_latency_p50_s, b.sr_latency_p50_s);
  EXPECT_EQ(a.sr_latency_p99_s, b.sr_latency_p99_s);
  EXPECT_EQ(a.sr_server_seconds, b.sr_server_seconds);
}

// ---------------------------------------------------------------------------
// LruByteCache

TEST(LruByteCache, EvictsInLeastRecentlyUsedOrder) {
  LruByteCache cache(300);
  EXPECT_FALSE(cache.fetch(1, 100));
  EXPECT_FALSE(cache.fetch(2, 100));
  EXPECT_FALSE(cache.fetch(3, 100));
  EXPECT_EQ(cache.keys_lru_to_mru(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(cache.resident_bytes(), 300u);

  // A hit refreshes recency: 1 moves to MRU, 2 becomes the victim.
  EXPECT_TRUE(cache.fetch(1, 100));
  EXPECT_EQ(cache.keys_lru_to_mru(), (std::vector<int>{2, 3, 1}));
  EXPECT_FALSE(cache.fetch(4, 100));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.keys_lru_to_mru(), (std::vector<int>{3, 1, 4}));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.resident_bytes(), 300u);
}

TEST(LruByteCache, EvictsAsManyEntriesAsTheNewcomerNeeds) {
  LruByteCache cache(300);
  cache.fetch(1, 100);
  cache.fetch(2, 100);
  cache.fetch(3, 100);
  EXPECT_FALSE(cache.fetch(4, 180));  // needs two victims, not just one
  EXPECT_EQ(cache.keys_lru_to_mru(), (std::vector<int>{3, 4}));
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(cache.resident_bytes(), 280u);  // 3 (100) + 4 (180)
}

TEST(LruByteCache, OversizedObjectsBypassInsteadOfFlushing) {
  LruByteCache cache(200);
  cache.fetch(1, 100);
  cache.fetch(2, 100);
  EXPECT_FALSE(cache.fetch(9, 500));  // larger than the whole budget
  EXPECT_EQ(cache.bypasses(), 1u);
  EXPECT_FALSE(cache.contains(9));
  EXPECT_TRUE(cache.contains(1));  // resident set untouched
  EXPECT_TRUE(cache.contains(2));
  EXPECT_EQ(cache.resident_bytes(), 200u);
}

TEST(LruByteCache, CountsHitsAndMisses) {
  LruByteCache cache(1000);
  cache.fetch(5, 10);
  cache.fetch(5, 10);
  cache.fetch(6, 10);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruByteCache, ZeroBudgetBypassesEverythingAndNeverEvicts) {
  // Degenerate but legal configuration: a zero-byte edge tier. Every object
  // is larger than the whole budget, so every fetch is a miss-and-bypass —
  // nothing is ever admitted, so nothing can be evicted, and the eviction
  // loop must not run (its `resident_ + bytes > budget_` guard with an empty
  // order_ list would otherwise spin or underflow).
  LruByteCache cache(0);
  for (int round = 0; round < 2; ++round)
    for (int key = 0; key < 4; ++key) EXPECT_FALSE(cache.fetch(key, 1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 8u);
  EXPECT_EQ(cache.bypasses(), 8u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_TRUE(cache.keys_lru_to_mru().empty());
  EXPECT_FALSE(cache.contains(0));

  // A zero-byte object against a zero-byte budget is the one fit that does
  // work: 0 + 0 > 0 is false, so it admits without evicting.
  EXPECT_FALSE(cache.fetch(9, 0));
  EXPECT_TRUE(cache.contains(9));
  EXPECT_EQ(cache.resident_bytes(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_TRUE(cache.fetch(9, 0));
}

// ---------------------------------------------------------------------------
// DurationHistogram

TEST(DurationHistogram, PercentilesLandInTheRightBin) {
  DurationHistogram h(0.01, 100);  // 10 ms bins up to 1 s
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) * 0.01);
  EXPECT_NEAR(h.percentile(50.0), 0.5, 0.02);
  EXPECT_NEAR(h.percentile(99.0), 0.99, 0.02);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(DurationHistogram(0.01, 10).percentile(50.0), 0.0);
}

TEST(DurationHistogram, OverflowReportsTheExactMaximum) {
  DurationHistogram h(0.01, 10);  // binned range ends at 0.1 s
  h.add(0.05);
  h.add(42.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 42.0);
}

TEST(DurationHistogram, EmptyHistogramReportsZeroEverywhere) {
  const DurationHistogram h(0.01, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
}

TEST(DurationHistogram, SingleSampleIsEveryPercentile) {
  DurationHistogram h(0.5, 10);  // dyadic bin width: exact float arithmetic
  h.add(1.2);                    // lands in bin 2 -> midpoint 1.25
  EXPECT_EQ(h.count(), 1u);
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 1.25) << "p=" << p;
  }
}

TEST(DurationHistogram, AllSamplesInSaturatingBucketReportMaxSeen) {
  DurationHistogram h(0.01, 10);  // binned range ends at 0.1 s
  h.add(5.0);
  h.add(17.5);
  h.add(3.25);
  EXPECT_EQ(h.count(), 3u);
  // Every sample overflowed the binned range: no bin can satisfy any
  // percentile, so all of them fall through to the exact maximum.
  for (const double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 17.5) << "p=" << p;
  }
  // Out-of-range p clamps rather than reading past the bins.
  EXPECT_DOUBLE_EQ(h.percentile(-5.0), 17.5);
  EXPECT_DOUBLE_EQ(h.percentile(250.0), 17.5);
}

// ---------------------------------------------------------------------------
// Workload generator

TEST(Zipf, SkewConcentratesMassOnLowRanks) {
  const ZipfSampler uniform(100, 0.0);
  const ZipfSampler skewed(100, 1.2);
  // CDF at rank 9 (top 10%): uniform = 0.1, skewed much larger.
  EXPECT_NEAR(uniform.cdf(9), 0.1, 1e-9);
  EXPECT_GT(skewed.cdf(9), 0.5);
  // CDFs are monotone and end at exactly 1.
  for (int k = 1; k < 100; ++k) EXPECT_GE(skewed.cdf(k), skewed.cdf(k - 1));
  EXPECT_DOUBLE_EQ(skewed.cdf(99), 1.0);

  Rng rng(3);
  int low = 0;
  for (int i = 0; i < 2000; ++i)
    if (skewed.sample(rng) < 10) ++low;
  EXPECT_GT(low, 1000);  // > half the draws hit the top 10% of ranks
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

TEST(Workload, DeterministicFromSeed) {
  WorkloadConfig cfg;
  cfg.sessions = 500;
  cfg.videos = 40;
  const Workload a = generate_workload(cfg, 7);
  const Workload b = generate_workload(cfg, 7);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    EXPECT_EQ(a.sessions[i].arrival_seconds, b.sessions[i].arrival_seconds);
    EXPECT_EQ(a.sessions[i].video, b.sessions[i].video);
    EXPECT_EQ(a.sessions[i].device_class, b.sessions[i].device_class);
    EXPECT_EQ(a.sessions[i].watch_segments, b.sessions[i].watch_segments);
    EXPECT_EQ(a.sessions[i].rng_seed, b.sessions[i].rng_seed);
  }
  const Workload c = generate_workload(cfg, 8);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.sessions.size(); ++i)
    any_difference = any_difference ||
                     a.sessions[i].rng_seed != c.sessions[i].rng_seed;
  EXPECT_TRUE(any_difference);
}

TEST(Workload, ArrivalsSortedWithinHorizon) {
  WorkloadConfig cfg;
  cfg.sessions = 2000;
  cfg.videos = 50;
  cfg.horizon_seconds = 3600.0;
  const Workload w = generate_workload(cfg, 1);
  ASSERT_EQ(w.sessions.size(), 2000u);
  for (std::size_t i = 0; i < w.sessions.size(); ++i) {
    EXPECT_GE(w.sessions[i].arrival_seconds, 0.0);
    EXPECT_LE(w.sessions[i].arrival_seconds, 3600.0);
    if (i > 0) {
      EXPECT_GE(w.sessions[i].arrival_seconds,
                w.sessions[i - 1].arrival_seconds);
    }
  }
}

TEST(Workload, DiurnalPeakDrawsMoreArrivalsThanTrough) {
  WorkloadConfig cfg;
  cfg.sessions = 20000;
  cfg.videos = 20;
  cfg.horizon_seconds = 86400.0;
  cfg.diurnal.amplitude = 0.8;
  cfg.diurnal.peak_hour = 20.0;
  const Workload w = generate_workload(cfg, 5);
  int peak = 0, trough = 0;
  for (const auto& s : w.sessions) {
    const double hour = s.arrival_seconds / 3600.0;
    if (hour >= 18.0 && hour < 22.0) ++peak;    // around 8 pm
    if (hour >= 6.0 && hour < 10.0) ++trough;   // around 8 am
  }
  EXPECT_GT(peak, 2 * trough);
}

TEST(Workload, CatalogSharesClustersAcrossVideos) {
  WorkloadConfig cfg;
  cfg.sessions = 1;
  cfg.videos = 60;
  cfg.global_clusters = 32;
  cfg.cluster_zipf_skew = 1.2;
  const Workload w = generate_workload(cfg, 2);
  // Count videos touching the globally most popular cluster id: with a
  // skewed shared pool, many videos must reference it — that is what makes
  // an edge cache pay off across videos.
  std::vector<int> touched(32, 0);
  for (const auto& v : w.catalog) {
    std::vector<bool> seen(32, false);
    for (const int c : v.segment_cluster) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, 32);
      seen[static_cast<std::size_t>(c)] = true;
    }
    for (int c = 0; c < 32; ++c)
      if (seen[static_cast<std::size_t>(c)]) ++touched[static_cast<std::size_t>(c)];
  }
  int max_touched = 0;
  for (const int n : touched) max_touched = std::max(max_touched, n);
  EXPECT_GT(max_touched, 30);  // the hottest cluster spans half the catalog
}

TEST(Workload, WatchTimesRespectVideoLength) {
  WorkloadConfig cfg;
  cfg.sessions = 3000;
  cfg.videos = 30;
  const Workload w = generate_workload(cfg, 9);
  for (const auto& s : w.sessions) {
    const auto len = static_cast<int>(
        w.catalog[static_cast<std::size_t>(s.video)].segment_cluster.size());
    EXPECT_GE(s.watch_segments, 1);
    EXPECT_LE(s.watch_segments, len);
  }
}

TEST(Workload, RejectsNonsenseConfigs) {
  WorkloadConfig cfg;
  cfg.sessions = 0;
  EXPECT_THROW(generate_workload(cfg, 1), std::invalid_argument);
  cfg = {};
  cfg.videos = 0;
  EXPECT_THROW(generate_workload(cfg, 1), std::invalid_argument);
  cfg = {};
  cfg.segments_min = 10;
  cfg.segments_max = 5;
  EXPECT_THROW(generate_workload(cfg, 1), std::invalid_argument);
  cfg = {};
  cfg.horizon_seconds = -1.0;
  EXPECT_THROW(generate_workload(cfg, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fleet simulator

TEST(Fleet, RepeatedRunsAreBitIdentical) {
  const FleetConfig cfg = small_fleet();
  const FleetSummary a = run_fleet(cfg);
  const FleetSummary b = run_fleet(cfg);
  expect_summaries_identical(a, b);
  EXPECT_EQ(a.sessions, 3000u);
  EXPECT_GT(a.segments, a.sessions);  // everyone watches > 1 segment on average
}

TEST(Fleet, SweepBitIdenticalAcrossThreadCounts) {
  std::vector<FleetConfig> configs;
  for (int i = 0; i < 3; ++i) {
    FleetConfig c = small_fleet();
    c.workload.sessions = 1200;
    c.seed = 11 + static_cast<std::uint64_t>(i);
    configs.push_back(c);
  }
  const int saved_threads = default_pool().threads();
  set_default_pool_threads(1);
  const std::vector<FleetSummary> serial = run_fleet_sweep(configs);
  set_default_pool_threads(4);
  const std::vector<FleetSummary> parallel = run_fleet_sweep(configs);
  set_default_pool_threads(saved_threads);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    expect_summaries_identical(serial[i], parallel[i]);
  // Different seeds genuinely produced different fleets.
  EXPECT_NE(serial[0].model_bytes_last_mile, serial[1].model_bytes_last_mile);
}

TEST(Fleet, EdgeHitRateRisesWithPopularitySkew) {
  std::vector<FleetConfig> configs;
  for (const double skew : {0.1, 1.5}) {
    FleetConfig c = small_fleet();
    c.workload.video_zipf_skew = skew;
    c.workload.cluster_zipf_skew = skew;
    configs.push_back(c);
  }
  const std::vector<FleetSummary> r = run_fleet_sweep(configs);
  EXPECT_GT(r[1].edge_hit_rate(), r[0].edge_hit_rate());
  // More edge hits = fewer origin bytes for the same session count — the
  // fleet-level Fig. 10 claim.
  EXPECT_LT(r[1].model_bytes_origin, r[0].model_bytes_origin);
}

TEST(Fleet, EdgeBudgetIsRespectedAndEvictionHappens) {
  FleetConfig cfg = small_fleet();
  cfg.edge_budget_bytes = 1ull << 20;  // ~8 models: heavy churn
  const FleetSummary s = run_fleet(cfg);
  EXPECT_LE(s.edge_resident_bytes, cfg.edge_budget_bytes);
  EXPECT_GT(s.edge_evictions, 0u);
  // A bigger budget strictly helps the hit rate.
  FleetConfig big = small_fleet();
  big.edge_budget_bytes = 256ull << 20;
  const FleetSummary sb = run_fleet(big);
  EXPECT_GT(sb.edge_hit_rate(), s.edge_hit_rate());
}

TEST(Fleet, UnboundedEdgeMissesOncePerCluster) {
  FleetConfig cfg = small_fleet();
  cfg.edge_budget_bytes = 1ull << 40;  // effectively infinite
  const FleetSummary s = run_fleet(cfg);
  // Cold misses only: at most one origin fetch per global cluster.
  EXPECT_LE(s.edge_misses,
            static_cast<std::uint64_t>(cfg.workload.global_clusters));
  EXPECT_EQ(s.edge_evictions, 0u);
  EXPECT_EQ(s.edge_bypasses, 0u);
}

TEST(Fleet, TierAccountingIsConsistent) {
  const FleetSummary s = run_fleet(small_fleet());
  // Every segment consults the client cache (all segments carry a model).
  EXPECT_EQ(s.client_hits + s.client_misses, s.segments);
  // Every client miss is resolved by exactly one of edge / origin.
  EXPECT_EQ(s.edge_hits + s.edge_misses, s.client_misses);
  // Client-side model traffic covers at least the origin-side traffic.
  EXPECT_GE(s.model_bytes_last_mile, s.model_bytes_origin);
  EXPECT_GT(s.video_bytes, 0u);
  EXPECT_GT(s.mean_quality_db, 0.0);
}

TEST(Fleet, SrUnbatchedServesEveryFrameAlone) {
  // Window off: one infer call per enhanced I frame, occupancy exactly 1,
  // every frame pays base + per_frame with zero wait.
  FleetConfig cfg = small_fleet();
  cfg.sr_batch_window_seconds = 0.0;
  const FleetSummary s = run_fleet(cfg);
  ASSERT_GT(s.sr_frames, 0u);
  EXPECT_EQ(s.sr_frames, s.sr_batches);
  EXPECT_DOUBLE_EQ(s.sr_batch_occupancy(), 1.0);
  const double solo = cfg.sr_base_latency_seconds + cfg.sr_per_frame_seconds;
  EXPECT_NEAR(s.sr_latency_p50_s, solo, 0.001);  // within one histogram bin
  EXPECT_NEAR(s.sr_server_seconds,
              solo * static_cast<double>(s.sr_frames), 1e-6);
}

TEST(Fleet, SrRequestCountTracksModeledSegments) {
  // Exactly one SR request per segment that resolved a cluster model; the
  // client/edge tier split does not change the enhancement count.
  const FleetSummary s = run_fleet(small_fleet());
  EXPECT_EQ(s.sr_frames, s.client_hits + s.client_misses);
}

TEST(Fleet, SrBatchingCoalescesAndCutsServerTime) {
  // A positive window must (a) keep the frame count identical — batching
  // never drops or duplicates work, (b) push occupancy above 1 on a
  // workload with concurrent same-cluster viewers, (c) reduce total server
  // busy time (the sessions-per-server-second win), and (d) trade that for
  // added client latency bounded by the window.
  FleetConfig cfg = small_fleet();
  cfg.workload.sessions = 20000;  // denser arrivals => real concurrency
  cfg.workload.horizon_seconds = 3600.0;
  cfg.sr_batch_window_seconds = 0.0;
  const FleetSummary solo = run_fleet(cfg);

  cfg.sr_batch_window_seconds = 0.25;
  const FleetSummary batched = run_fleet(cfg);

  EXPECT_EQ(batched.sr_frames, solo.sr_frames);
  EXPECT_LT(batched.sr_batches, solo.sr_batches);
  EXPECT_GT(batched.sr_batch_occupancy(), 1.0);
  EXPECT_LT(batched.sr_server_seconds, solo.sr_server_seconds);
  EXPECT_GT(batched.sr_sessions_per_server_second(),
            solo.sr_sessions_per_server_second());
  // Worst case per frame: full window wait + the whole batch's service.
  EXPECT_GE(batched.sr_latency_p50_s, solo.sr_latency_p50_s);
  // Playback is untouched: serving is accounted out-of-band.
  EXPECT_EQ(batched.segments, solo.segments);
  EXPECT_EQ(batched.rebuffer_p99_s, solo.rebuffer_p99_s);
  EXPECT_EQ(batched.mean_quality_db, solo.mean_quality_db);
}

TEST(Fleet, SrBatchingIsDeterministic) {
  FleetConfig cfg = small_fleet();
  cfg.sr_batch_window_seconds = 0.1;
  const FleetSummary a = run_fleet(cfg);
  const FleetSummary b = run_fleet(cfg);
  expect_summaries_identical(a, b);
}

TEST(Fleet, AdvanceLoopIsHeapSilent) {
  const FleetSummary s = run_fleet(small_fleet());
#if DCSR_ALLOC_CHECK
  // With the interposer compiled in, the guarded per-event step observes
  // real heap traffic — but every single allocation must be sanctioned
  // (cache admissions, model-download modelling): the steady-state event
  // loop itself is heap-silent, which is what makes the guard survivable.
  EXPECT_GT(s.advance_heap_allocs, 0u);
  EXPECT_EQ(s.advance_heap_allocs, s.advance_heap_allocs_sanctioned);
#else
  // Without the interposer the counters are defined to stay zero.
  EXPECT_EQ(s.advance_heap_allocs, 0u);
  EXPECT_EQ(s.advance_heap_allocs_sanctioned, 0u);
#endif
}

}  // namespace
}  // namespace dcsr::stream
