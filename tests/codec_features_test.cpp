// Tests for the sub-pel motion and intra-prediction codec features.

#include <gtest/gtest.h>

#include "codec/bits.hpp"
#include "codec/frame_coding.hpp"
#include "codec/motion.hpp"
#include "codec/quant.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "video/noise.hpp"

namespace dcsr::codec {
namespace {

Plane smooth_plane(int w, int h, std::uint64_t seed) {
  Plane p(w, h);
  const ValueNoise noise(seed);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      p.at(x, y) = noise.fbm(static_cast<float>(x), static_cast<float>(y), 16.0f, 2);
  return p;
}

// ---- half-pel sampling -------------------------------------------------------

TEST(HalfPel, EvenCoordinatesHitIntegerSamples) {
  Plane p(4, 4);
  p.at(2, 1) = 0.75f;
  EXPECT_FLOAT_EQ(sample_halfpel(p, 4, 2), 0.75f);
}

TEST(HalfPel, OddCoordinatesAverageNeighbours) {
  Plane p(4, 4);
  p.at(1, 1) = 0.2f;
  p.at(2, 1) = 0.6f;
  p.at(1, 2) = 0.4f;
  p.at(2, 2) = 0.8f;
  EXPECT_FLOAT_EQ(sample_halfpel(p, 3, 2), 0.4f);   // horizontal midpoint
  EXPECT_FLOAT_EQ(sample_halfpel(p, 2, 3), 0.3f);   // vertical midpoint
  EXPECT_FLOAT_EQ(sample_halfpel(p, 3, 3), 0.5f);   // diagonal midpoint
}

TEST(HalfPel, ClampsAtEdges) {
  Plane p(2, 2);
  p.fill(0.5f);
  EXPECT_FLOAT_EQ(sample_halfpel(p, -3, -3), 0.5f);
  EXPECT_FLOAT_EQ(sample_halfpel(p, 9, 9), 0.5f);
}

TEST(HalfPel, RefinementFindsSubPelShift) {
  // cur is ref shifted by exactly half a pixel horizontally (average of
  // neighbours); the refinement must pick the odd x displacement.
  const Plane ref = smooth_plane(64, 64, 3);
  Plane cur(64, 64);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x)
      cur.at(x, y) = 0.5f * (ref.at_clamped(x, y) + ref.at_clamped(x + 1, y));
  const MotionVector full = motion_search(cur, ref, 24, 24, 16, 8);
  const MotionVector hp =
      refine_halfpel(cur, ref, 24, 24, 16, {2 * full.x, 2 * full.y});
  EXPECT_EQ(hp.x, 1);
  EXPECT_EQ(hp.y, 0);
}

TEST(HalfPel, RefinementKeepsZeroOnStaticContent) {
  const Plane p = smooth_plane(48, 48, 5);
  const MotionVector hp = refine_halfpel(p, p, 16, 16, 16, {0, 0});
  EXPECT_EQ(hp.x, 0);
  EXPECT_EQ(hp.y, 0);
}

TEST(HalfPel, SubPelMotionCodesCheaperThanResidual) {
  // A frame pair displaced by 2.5 px: with half-pel prediction the residual
  // nearly vanishes, so the P frame must be a small fraction of the intra
  // cost of the same frame.
  const Plane base = smooth_plane(80, 64, 7);
  FrameYUV ref(64, 48), cur(64, 48);
  for (int y = 0; y < 48; ++y)
    for (int x = 0; x < 64; ++x) {
      ref.y.at(x, y) = base.at_clamped(x + 8, y + 8);
      cur.y.at(x, y) = 0.5f * (base.at_clamped(x + 10, y + 8) +
                               base.at_clamped(x + 11, y + 8));
    }
  ref.u.fill(0.5f);
  ref.v.fill(0.5f);
  cur.u.fill(0.5f);
  cur.v.fill(0.5f);

  const Quantizer q(28);
  BitWriter bw_ref, bw_p, bw_i;
  const FrameYUV ref_recon = encode_intra_frame(ref, q, bw_ref);
  encode_p_frame(cur, ref_recon, q, 8, bw_p);
  encode_intra_frame(cur, q, bw_i);
  // The reference is itself quantised, so the sub-pel prediction is not
  // perfect — but the P frame must still be a small fraction of intra cost.
  EXPECT_LT(bw_p.bit_count() * 2, bw_i.bit_count());
}

// ---- intra prediction -----------------------------------------------------------

TEST(IntraPrediction, VerticallyUniformFrameCodesVeryCompactly) {
  // Columns constant along y: after the first block row, vertical prediction
  // is exact and every residual quantises to zero.
  FrameYUV f(64, 48);
  for (int y = 0; y < 48; ++y)
    for (int x = 0; x < 64; ++x)
      f.y.at(x, y) = 0.2f + 0.6f * static_cast<float>(x) / 63.0f;
  f.u.fill(0.5f);
  f.v.fill(0.5f);

  const Quantizer q(23);
  BitWriter bw;
  const FrameYUV recon = encode_intra_frame(f, q, bw);
  EXPECT_GT(psnr(f.y, recon.y), 37.0);
  // 48 luma + 24 chroma blocks; compact means only a few bits per block
  // beyond the mode signalling.
  EXPECT_LT(bw.bit_count(), 72u * 40u);
}

TEST(IntraPrediction, HorizontallyUniformFrameCodesVeryCompactly) {
  FrameYUV f(64, 48);
  for (int y = 0; y < 48; ++y)
    for (int x = 0; x < 64; ++x)
      f.y.at(x, y) = 0.2f + 0.6f * static_cast<float>(y) / 47.0f;
  f.u.fill(0.5f);
  f.v.fill(0.5f);

  const Quantizer q(23);
  BitWriter bw;
  const FrameYUV recon = encode_intra_frame(f, q, bw);
  EXPECT_GT(psnr(f.y, recon.y), 37.0);
  EXPECT_LT(bw.bit_count(), 72u * 40u);
}

TEST(IntraPrediction, DirectionalContentBeatsFlatDcAssumption) {
  // A frame of vertical stripes: vertical prediction reconstructs rows below
  // the first block row for free, so total bits must be well below the bits
  // of the first block row scaled to the whole frame.
  FrameYUV f(64, 48);
  for (int y = 0; y < 48; ++y)
    for (int x = 0; x < 64; ++x)
      f.y.at(x, y) = (x / 4) % 2 ? 0.8f : 0.2f;
  f.u.fill(0.5f);
  f.v.fill(0.5f);

  const Quantizer q(23);
  BitWriter bw;
  encode_intra_frame(f, q, bw);

  // First block row alone, as its own tiny frame.
  FrameYUV strip(64, 16);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 64; ++x) strip.y.at(x, y) = f.y.at(x, y);
  strip.u.fill(0.5f);
  strip.v.fill(0.5f);
  BitWriter bw_strip;
  encode_intra_frame(strip, q, bw_strip);

  // Whole frame is 3x the strip's rows; with vertical prediction it should
  // cost much less than 3x the strip.
  EXPECT_LT(bw.bit_count(), bw_strip.bit_count() * 2);
}

TEST(IntraPrediction, RoundTripStillBitExact) {
  // The new modes must preserve the encoder/decoder agreement.
  Rng rng(9);
  FrameYUV f(48, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 48; ++x)
      f.y.at(x, y) = static_cast<float>(rng.uniform());
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 24; ++x) {
      f.u.at(x, y) = static_cast<float>(rng.uniform());
      f.v.at(x, y) = static_cast<float>(rng.uniform());
    }
  const Quantizer q(30);
  BitWriter bw;
  const FrameYUV enc = encode_intra_frame(f, q, bw);
  const auto payload = bw.finish();
  BitReader br(payload);
  const FrameYUV dec = decode_intra_frame(48, 32, q, br);
  EXPECT_DOUBLE_EQ(psnr(enc.y, dec.y), 100.0);
  EXPECT_DOUBLE_EQ(psnr(enc.u, dec.u), 100.0);
  EXPECT_DOUBLE_EQ(psnr(enc.v, dec.v), 100.0);
}

}  // namespace
}  // namespace dcsr::codec
