// Tests for the bitstream analyzer and the fp16 model serialisation.

#include <gtest/gtest.h>

#include <cmath>

#include "codec/analyze.hpp"
#include "codec/encoder.hpp"
#include "nn/serialize.hpp"
#include "sr/edsr.hpp"
#include "video/genres.hpp"

namespace dcsr {
namespace {

TEST(Analyze, CountsAndBytesByFrameType) {
  codec::EncodedSegment seg;
  auto add = [&](codec::FrameType t, std::size_t bytes) {
    codec::EncodedFrame f;
    f.type = t;
    f.payload.assign(bytes, 0);
    seg.frames.push_back(std::move(f));
  };
  add(codec::FrameType::kI, 1000);
  add(codec::FrameType::kP, 100);
  add(codec::FrameType::kP, 200);
  add(codec::FrameType::kB, 50);

  const codec::StreamStats s = codec::analyze(seg);
  EXPECT_EQ(s.i_frames, 1);
  EXPECT_EQ(s.p_frames, 2);
  EXPECT_EQ(s.b_frames, 1);
  EXPECT_EQ(s.total_bytes(), 1350u);
  EXPECT_DOUBLE_EQ(s.i_byte_share(), 1000.0 / 1350.0);
  EXPECT_DOUBLE_EQ(s.mean_p_bytes(), 150.0);
  EXPECT_DOUBLE_EQ(s.mean_b_bytes(), 50.0);
}

TEST(Analyze, EmptyStreamIsAllZeros) {
  const codec::StreamStats s = codec::analyze(codec::EncodedVideo{});
  EXPECT_EQ(s.frame_count(), 0);
  EXPECT_DOUBLE_EQ(s.i_byte_share(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_i_bytes(), 0.0);
}

TEST(Analyze, RealStreamConfirmsGopPremise) {
  // The paper's §3.1.1 premise, measured: I frames are few but carry a
  // disproportionate share of the bytes; P frames are far cheaper each.
  const auto video = make_genre_video(Genre::kNews, 61, 64, 48, 4.0, 15.0);
  codec::CodecConfig cfg;
  cfg.crf = 35;
  const auto encoded = codec::Encoder(cfg).encode(
      *video, {{0, video->frame_count()}});
  const codec::StreamStats s = codec::analyze(encoded);
  ASSERT_EQ(s.i_frames, 1);
  ASSERT_GT(s.p_frames, 10);
  EXPECT_GT(s.mean_i_bytes(), 2.0 * s.mean_p_bytes());
  EXPECT_GT(s.i_byte_share(),
            1.5 / static_cast<double>(s.frame_count()));  // >> its frame share
}

// ---- fp16 ------------------------------------------------------------------

TEST(Fp16, ExactValuesRoundTrip) {
  // Values exactly representable in binary16 survive unchanged.
  for (const float v : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f,
                        0.09375f, -65504.0f /* max half */}) {
    EXPECT_EQ(nn::half_to_float(nn::float_to_half(v)), v) << v;
  }
}

TEST(Fp16, RelativeErrorBounded) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.normal(0.0, 1.0));
    const float back = nn::half_to_float(nn::float_to_half(v));
    EXPECT_NEAR(back, v, std::max(1e-6f, std::abs(v) * 1e-3f));
  }
}

TEST(Fp16, SubnormalsAndOverflow) {
  // Tiny values collapse toward zero gracefully.
  const float tiny = 1e-9f;
  const float back = nn::half_to_float(nn::float_to_half(tiny));
  EXPECT_GE(back, 0.0f);
  EXPECT_LT(back, 1e-6f);
  // Values beyond half range become infinity.
  EXPECT_TRUE(std::isinf(nn::half_to_float(nn::float_to_half(1e6f))));
  EXPECT_TRUE(std::isinf(nn::half_to_float(nn::float_to_half(-1e6f))));
  // Infinity round-trips.
  EXPECT_TRUE(std::isinf(nn::half_to_float(nn::float_to_half(
      std::numeric_limits<float>::infinity()))));
}

TEST(Fp16, HalfOfSmallestNormalIsSubnormal) {
  const float v = 3.0e-5f;  // below the smallest normal half (6.1e-5)
  const float back = nn::half_to_float(nn::float_to_half(v));
  EXPECT_NEAR(back, v, v * 0.05f);
}

TEST(Fp16, ModelRoundTripPreservesBehaviour) {
  Rng rng(2);
  const sr::EdsrConfig cfg{.n_filters = 8, .n_resblocks = 2, .scale = 1};
  sr::Edsr model(cfg, rng), reloaded(cfg, rng);

  ByteWriter w;
  nn::save_params_fp16(model, w);
  EXPECT_EQ(w.size(), nn::serialized_size_fp16(model));
  // Half the float32 payload plus identical headers.
  EXPECT_LT(nn::serialized_size_fp16(model), nn::serialized_size(model) * 6 / 10);

  ByteReader r(w.bytes());
  nn::load_params_fp16(reloaded, r);

  const Tensor x = Tensor::randn({1, 3, 12, 12}, rng, 0.3f);
  const Tensor ya = model.forward(x);
  const Tensor yb = reloaded.forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i)
    EXPECT_NEAR(ya[i], yb[i], 5e-2f);
}

TEST(Fp16, RejectsFp32Payload) {
  Rng rng(3);
  sr::Edsr model({.n_filters = 4, .n_resblocks = 1}, rng);
  ByteWriter w;
  nn::save_params(model, w);
  ByteReader r(w.bytes());
  EXPECT_THROW(nn::load_params_fp16(model, r), std::invalid_argument);
}

}  // namespace
}  // namespace dcsr
