// Cross-module integration tests: the full dcSR loop wired together the way
// the examples and benches use it, with assertions on the interactions
// between stages rather than on any single module.

#include <gtest/gtest.h>

#include "core/dcsr.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "nn/serialize.hpp"
#include "util/serialize.hpp"

namespace dcsr {
namespace {

core::ServerConfig fast_config() {
  core::ServerConfig cfg;
  cfg.codec.crf = 51;
  cfg.codec.intra_period = 10;
  cfg.vae = {.input_size = 16, .latent_dim = 4, .base_channels = 4, .hidden = 32};
  cfg.vae_epochs = 6;
  cfg.micro = {.n_filters = 8, .n_resblocks = 2, .scale = 1};
  cfg.big = {.n_filters = 32, .n_resblocks = 4, .scale = 1};
  cfg.k_max = 4;
  cfg.training = {.iterations = 30, .patch_size = 16, .batch_size = 2, .lr = 3e-3};
  cfg.seed = 9;
  return cfg;
}

TEST(Integration, PipelineIsDeterministicForFixedSeed) {
  const auto video = make_genre_video(Genre::kGaming, 55, 64, 48, 20.0, 15.0);
  const core::ServerConfig cfg = fast_config();
  const auto a = core::run_server_pipeline(*video, cfg);
  const auto b = core::run_server_pipeline(*video, cfg);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.encoded.size_bytes(), b.encoded.size_bytes());
  // Model weights identical too.
  ByteWriter wa, wb;
  nn::save_params(*a.micro_models[0], wa);
  nn::save_params(*b.micro_models[0], wb);
  EXPECT_EQ(wa.bytes(), wb.bytes());
}

TEST(Integration, ManifestSessionAndDecodeAgreeOnSegments) {
  const auto video = make_genre_video(Genre::kMusicVideo, 56, 64, 48, 20.0, 15.0);
  const auto server = core::run_server_pipeline(*video, fast_config());
  const auto manifest = server.manifest();
  const auto session = stream::simulate_session(manifest);

  ASSERT_EQ(manifest.segments.size(), server.encoded.segments.size());
  ASSERT_EQ(session.log.size(), manifest.segments.size());
  EXPECT_EQ(session.video_bytes, server.encoded.size_bytes());

  // Every downloaded model label is one the playback path would use.
  for (std::size_t s = 0; s < session.log.size(); ++s)
    EXPECT_EQ(manifest.segments[s].model_label, server.labels[s]);

  // Decoding the streamed segments yields exactly the video's frame count.
  codec::Decoder dec(server.encoded.width, server.encoded.height,
                     server.encoded.crf);
  EXPECT_EQ(dec.decode_video(server.encoded).size(),
            static_cast<std::size_t>(video->frame_count()));
}

TEST(Integration, SerializedMicroModelsDriveClientPlayback) {
  // Ship the micro models through their wire format (as the CDN would),
  // reload them into fresh instances, and verify playback is identical to
  // using the originals — models survive serialisation end to end.
  const auto video = make_genre_video(Genre::kNews, 57, 64, 48, 16.0, 15.0);
  const auto server = core::run_server_pipeline(*video, fast_config());

  std::vector<std::unique_ptr<sr::Edsr>> shipped;
  Rng rng(1);
  for (const auto& m : server.micro_models) {
    ByteWriter w;
    nn::save_params(*m, w);
    EXPECT_EQ(w.size(), server.micro_model_bytes);
    auto fresh = std::make_unique<sr::Edsr>(m->config(), rng);
    ByteReader r(w.bytes());
    nn::load_params(*fresh, r);
    shipped.push_back(std::move(fresh));
  }

  const auto original =
      core::play_dcsr(server.encoded, server.labels, server.micro_models, *video);
  const auto reloaded =
      core::play_dcsr(server.encoded, server.labels, shipped, *video);
  ASSERT_EQ(original.frame_psnr.size(), reloaded.frame_psnr.size());
  for (std::size_t i = 0; i < original.frame_psnr.size(); ++i)
    EXPECT_DOUBLE_EQ(original.frame_psnr[i], reloaded.frame_psnr[i]);
}

TEST(Integration, EnhancementOnlyTouchesTargetSegments) {
  // Playing with micro models must never *change the segment structure*:
  // frame counts, order and segment boundaries are decode-layer facts.
  const auto video = make_genre_video(Genre::kSports, 58, 64, 48, 12.0, 15.0);
  const auto server = core::run_server_pipeline(*video, fast_config());
  const auto low = core::play_low(server.encoded, *video);
  const auto dcsr = core::play_dcsr(server.encoded, server.labels,
                                    server.micro_models, *video);
  ASSERT_EQ(low.psnr_frame_index, dcsr.psnr_frame_index);
  EXPECT_EQ(low.frame_psnr.size(),
            static_cast<std::size_t>(video->frame_count()));
}

TEST(Integration, HigherCrfStreamsFewerBytesAtLowerQuality) {
  // End-to-end rate/distortion sanity across the whole pipeline.
  const auto video = make_genre_video(Genre::kDocumentary, 59, 64, 48, 10.0, 15.0);
  auto run_at = [&](int crf) {
    core::ServerConfig cfg = fast_config();
    cfg.codec.crf = crf;
    cfg.training.iterations = 5;  // quality of the *stream*, not the models
    const auto server = core::run_server_pipeline(*video, cfg);
    const auto low = core::play_low(server.encoded, *video);
    return std::pair<std::size_t, double>(server.encoded.size_bytes(),
                                          low.mean_psnr);
  };
  const auto [bytes35, psnr35] = run_at(35);
  const auto [bytes51, psnr51] = run_at(51);
  EXPECT_GT(bytes35, bytes51);
  EXPECT_GT(psnr35, psnr51);
}

TEST(Integration, DeviceModelAgreesWithModelFlops) {
  // The FPS the device model predicts for a micro model must track the
  // model's actual FLOPs: half the FLOPs => strictly higher FPS.
  const auto dev = device::jetson_xavier_nx();
  const auto res = device::res_1080p();
  const sr::EdsrConfig small = sr::dcsr1_config();
  const sr::EdsrConfig large = sr::dcsr3_config();
  ASSERT_LT(sr::edsr_flops(small, res.width, res.height),
            sr::edsr_flops(large, res.width, res.height));
  EXPECT_GT(device::segment_fps(dev, small, res, 120, 3).fps,
            device::segment_fps(dev, large, res, 120, 3).fps);
}

}  // namespace
}  // namespace dcsr
