#include <gtest/gtest.h>

#include "cluster/kmeans.hpp"
#include "features/extractor.hpp"
#include "features/vae.hpp"
#include "nn/optim.hpp"
#include "video/scene.hpp"

namespace dcsr::features {
namespace {

// Renders frames from two visually distinct scene families.
std::vector<FrameRGB> two_family_frames(int per_family) {
  Rng rng(3);
  SceneSpec a = random_scene(rng, 0.1f, 0.3f);
  a.color_a = {0.9f, 0.1f, 0.1f};
  a.color_b = {0.8f, 0.3f, 0.2f};
  SceneSpec b = random_scene(rng, 0.1f, 0.3f);
  b.color_a = {0.1f, 0.2f, 0.9f};
  b.color_b = {0.2f, 0.4f, 0.8f};
  std::vector<FrameRGB> frames;
  for (int i = 0; i < per_family; ++i)
    frames.push_back(render_scene(a, 0.4 * i, 64, 64));
  for (int i = 0; i < per_family; ++i)
    frames.push_back(render_scene(b, 0.4 * i, 64, 64));
  return frames;
}

TEST(Thumbnail, HasRequestedShape) {
  FrameRGB f(64, 48);
  const Tensor t = make_thumbnail(f, 32);
  EXPECT_EQ(t.shape(), (std::vector<int>{1, 3, 32, 32}));
}

TEST(Vae, RejectsBadInputSize) {
  Rng rng(1);
  Vae::Config cfg;
  cfg.input_size = 30;  // not divisible by 4
  EXPECT_THROW(Vae(cfg, rng), std::invalid_argument);
}

TEST(Vae, EncodeShapes) {
  Rng rng(2);
  Vae::Config cfg;
  cfg.input_size = 16;
  cfg.latent_dim = 4;
  Vae vae(cfg, rng);
  const Tensor mu = vae.encode_mu(Tensor({2, 3, 16, 16}));
  EXPECT_EQ(mu.shape(), (std::vector<int>{2, 4}));
  const Tensor rec = vae.reconstruct(Tensor({2, 3, 16, 16}));
  EXPECT_EQ(rec.shape(), (std::vector<int>{2, 3, 16, 16}));
}

TEST(Vae, ReconstructionInUnitRange) {
  Rng rng(3);
  Vae::Config cfg;
  cfg.input_size = 16;
  Vae vae(cfg, rng);
  const Tensor rec = vae.reconstruct(Tensor::full({1, 3, 16, 16}, 0.5f));
  for (std::size_t i = 0; i < rec.size(); ++i) {
    EXPECT_GT(rec[i], 0.0f);
    EXPECT_LT(rec[i], 1.0f);
  }
}

TEST(Vae, TrainingReducesReconstructionLoss) {
  Rng rng(4);
  Vae::Config cfg;
  cfg.input_size = 16;
  cfg.latent_dim = 4;
  cfg.base_channels = 4;
  cfg.hidden = 32;
  Vae vae(cfg, rng);
  nn::Adam opt(vae.params(), 2e-3);

  // A small fixed batch of structured images.
  Tensor batch({4, 3, 16, 16});
  for (int n = 0; n < 4; ++n)
    for (int c = 0; c < 3; ++c)
      for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
          batch.at(n, c, y, x) =
              0.2f + 0.15f * static_cast<float>(n) + (c == 0 ? 0.02f * y : 0.01f * x);

  double first = 0.0, last = 0.0;
  for (int it = 0; it < 120; ++it) {
    const auto stats = vae.train_step(batch, opt, rng, 1e-4f);
    if (it == 0) first = stats.recon_mse;
    last = stats.recon_mse;
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(Vae, TrainVaeHelperRuns) {
  Rng rng(5);
  const auto frames = two_family_frames(4);
  Vae::Config cfg;
  cfg.input_size = 16;
  cfg.latent_dim = 4;
  cfg.base_channels = 4;
  cfg.hidden = 32;
  const auto vae = train_vae(make_thumbnails(frames, 16), cfg, 5, rng);
  ASSERT_NE(vae, nullptr);
  EXPECT_EQ(vae->config().latent_dim, 4);
}

TEST(Vae, LatentSpaceSeparatesVisualFamilies) {
  // After training, frames of the same scene should be closer in latent
  // space than frames of different scenes — the property §3.1.1 needs.
  Rng rng(6);
  constexpr int kPer = 6;
  const auto frames = two_family_frames(kPer);
  Vae::Config cfg;
  cfg.input_size = 16;
  cfg.latent_dim = 4;
  cfg.base_channels = 4;
  cfg.hidden = 32;
  const auto vae = train_vae(make_thumbnails(frames, 16), cfg, 40, rng);
  const cluster::Dataset feats = extract_features(*vae, frames);
  ASSERT_EQ(feats.size(), 2u * kPer);

  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (std::size_t i = 0; i < feats.size(); ++i)
    for (std::size_t j = i + 1; j < feats.size(); ++j) {
      const bool same = (i < kPer) == (j < kPer);
      const double d = cluster::sq_distance(feats[i], feats[j]);
      (same ? intra : inter) += d;
      (same ? n_intra : n_inter) += 1;
    }
  intra /= n_intra;
  inter /= n_inter;
  EXPECT_LT(intra, inter);
}

TEST(Vae, TrainingIsDeterministicForFixedSeed) {
  const auto frames = two_family_frames(3);
  Vae::Config cfg;
  cfg.input_size = 16;
  cfg.latent_dim = 4;
  cfg.base_channels = 4;
  cfg.hidden = 32;
  Rng a(77), b(77);
  const auto va = train_vae(make_thumbnails(frames, 16), cfg, 4, a);
  const auto vb = train_vae(make_thumbnails(frames, 16), cfg, 4, b);
  const cluster::Dataset fa = extract_features(*va, frames);
  const cluster::Dataset fb = extract_features(*vb, frames);
  for (std::size_t i = 0; i < fa.size(); ++i)
    for (std::size_t d = 0; d < fa[i].size(); ++d)
      EXPECT_EQ(fa[i][d], fb[i][d]);
}

TEST(Vae, KlTermKeepsLatentsBounded) {
  // With a strong beta, latent means must stay near the prior (small norm).
  Rng rng(78);
  const auto frames = two_family_frames(4);
  Vae::Config cfg;
  cfg.input_size = 16;
  cfg.latent_dim = 4;
  cfg.base_channels = 4;
  cfg.hidden = 32;
  Vae vae(cfg, rng);
  nn::Adam opt(vae.params(), 2e-3);
  const auto thumbs = make_thumbnails(frames, 16);
  Tensor batch({static_cast<int>(thumbs.size()), 3, 16, 16});
  for (std::size_t b = 0; b < thumbs.size(); ++b)
    std::copy(thumbs[b].data(), thumbs[b].data() + thumbs[b].size(),
              batch.data() + b * thumbs[b].size());
  for (int it = 0; it < 150; ++it) vae.train_step(batch, opt, rng, /*beta=*/1.0f);
  const Tensor mu = vae.encode_mu(batch);
  double norm2 = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i) norm2 += mu[i] * mu[i];
  EXPECT_LT(norm2 / static_cast<double>(mu.size()), 1.5);
}

TEST(Extractor, RawPixelFeaturesHaveExpectedDim) {
  const auto frames = two_family_frames(2);
  const cluster::Dataset feats = raw_pixel_features(frames, 8);
  ASSERT_EQ(feats.size(), 4u);
  EXPECT_EQ(feats[0].size(), 3u * 8u * 8u);
}

}  // namespace
}  // namespace dcsr::features
