#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"
#include "util/thread_pool.hpp"

namespace dcsr {
namespace {

TEST(Shape, HoldsUpToMaxRankAndThrowsBeyond) {
  const Shape s{1, 2, 3, 4, 5, 6, 7, 8};  // exactly kMaxRank
  EXPECT_EQ(s.rank(), 8u);
  EXPECT_EQ(s[7], 8);
  EXPECT_THROW(Shape({1, 2, 3, 4, 5, 6, 7, 8, 9}), std::invalid_argument);
  EXPECT_THROW(Shape(std::vector<int>(9, 1)), std::invalid_argument);
}

TEST(Shape, ComparesAgainstShapesAndVectors) {
  const Shape a{2, 3, 4};
  EXPECT_EQ(a, Shape({2, 3, 4}));
  EXPECT_NE(a, Shape({2, 3}));
  EXPECT_NE(a, Shape({2, 3, 5}));
  // The vector overload (plus C++20 rewrites for the reversed form).
  EXPECT_TRUE(a == std::vector<int>({2, 3, 4}));
  EXPECT_TRUE(std::vector<int>({2, 3, 4}) == a);
  EXPECT_FALSE(a == std::vector<int>({2, 3}));
  EXPECT_EQ(Shape{}, Shape{});
  EXPECT_TRUE(Shape{}.empty());
}

TEST(Shape, RoundTripsThroughVector) {
  const std::vector<int> dims{7, 1, 9};
  const Shape s(dims);
  EXPECT_EQ(s.to_vector(), dims);
  EXPECT_EQ(Shape(s.to_vector()), s);
  EXPECT_TRUE(Shape{}.to_vector().empty());
}

TEST(Shape, StreamsAndFormatsForDiagnostics) {
  std::ostringstream os;
  os << Shape{1, 16, 24, 32};
  EXPECT_EQ(os.str(), "1x16x24x32");
  EXPECT_EQ(Shape({1, 16, 24, 32}).str(), "1x16x24x32");
  EXPECT_EQ(Shape{}.str(), "<scalar>");
}

TEST(Tensor, ConstructedZeroInitialised) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, RejectsNonPositiveDims) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
  EXPECT_THROW(Tensor({-1, 3}), std::invalid_argument);
}

TEST(Tensor, FullFillsValue) {
  const Tensor t = Tensor::full({4}, 2.5f);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, At4dRowMajorLayout) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  // Index = ((1*3 + 2)*4 + 3)*5 + 4 = 119.
  EXPECT_EQ(t[119], 7.0f);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor t({2, 6});
  t.at(1, 5) = 3.0f;
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.at(2, 3), 3.0f);
  EXPECT_THROW(t.reshaped({5, 5}), std::invalid_argument);
}

TEST(Tensor, AddAndAxpy) {
  Tensor a = Tensor::full({3}, 1.0f);
  const Tensor b = Tensor::full({3}, 2.0f);
  a.add_(b);
  EXPECT_EQ(a[0], 3.0f);
  a.axpy_(-2.0f, b);
  EXPECT_EQ(a[1], -1.0f);
  EXPECT_THROW(a.add_(Tensor({4})), std::invalid_argument);
}

TEST(Tensor, RandnStddevScales) {
  Rng rng(3);
  const Tensor t = Tensor::randn({10000}, rng, 0.5f);
  double s2 = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) s2 += t[i] * t[i];
  EXPECT_NEAR(s2 / static_cast<double>(t.size()), 0.25, 0.02);
}

TEST(Ops, ElementwiseAddSubMul) {
  Tensor a({2});
  a[0] = 1;
  a[1] = 2;
  Tensor b({2});
  b[0] = 3;
  b[1] = 5;
  EXPECT_EQ(add(a, b)[1], 7.0f);
  EXPECT_EQ(sub(b, a)[0], 2.0f);
  EXPECT_EQ(mul(a, b)[1], 10.0f);
  EXPECT_EQ(scaled(a, 4.0f)[0], 4.0f);
}

TEST(Ops, MatmulAgainstHandComputed) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  for (int i = 0; i < 6; ++i) a[static_cast<std::size_t>(i)] = static_cast<float>(i + 1);
  for (int i = 0; i < 6; ++i) b[static_cast<std::size_t>(i)] = static_cast<float>(i + 7);
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({2, 3})), std::invalid_argument);
}

// Property test: the blocked kernels against the scalar references across
// non-square shapes, tile remainders, and degenerate 1xN / Nx1 extents.
TEST(Ops, BlockedKernelsMatchNaiveReferences) {
  Rng rng(71);
  const int shapes[][3] = {{1, 1, 1},  {1, 8, 5},    {7, 1, 9},
                           {5, 9, 1},  {1, 64, 1},   {33, 17, 65},
                           {64, 64, 64}, {129, 31, 257}, {6, 300, 16},
                           {8, 72, 100}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    SCOPED_TRACE(testing::Message() << "m=" << m << " k=" << k << " n=" << n);

    const Tensor a = Tensor::randn({m, k}, rng);
    const Tensor b = Tensor::randn({k, n}, rng);
    const Tensor c = matmul(a, b);
    const Tensor c_ref = matmul_naive(a, b);
    ASSERT_TRUE(c.same_shape(c_ref));
    // NN and TN keep the naive per-element summation order: bit-identical.
    for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], c_ref[i]);

    const Tensor at = Tensor::randn({k, m}, rng);
    const Tensor ct = matmul_tn(at, b);
    const Tensor ct_ref = matmul_tn_naive(at, b);
    ASSERT_TRUE(ct.same_shape(ct_ref));
    for (std::size_t i = 0; i < ct.size(); ++i) EXPECT_EQ(ct[i], ct_ref[i]);

    const Tensor bt = Tensor::randn({n, k}, rng);
    const Tensor cn = matmul_nt(a, bt);
    const Tensor cn_ref = matmul_nt_naive(a, bt);
    ASSERT_TRUE(cn.same_shape(cn_ref));
    // NT reduces dot products over lanes — deterministic, but the order
    // differs from the scalar reference, so compare with a tolerance.
    for (std::size_t i = 0; i < cn.size(); ++i)
      EXPECT_NEAR(cn[i], cn_ref[i], 1e-3f * (1.0f + std::abs(cn_ref[i])));
  }
}

TEST(Ops, MatmulResultsInvariantToThreadCount) {
  const int saved = default_thread_count();
  Rng rng(73);
  const Tensor a = Tensor::randn({70, 50}, rng);
  const Tensor b = Tensor::randn({50, 90}, rng);
  const Tensor bt = Tensor::randn({90, 50}, rng);

  set_default_pool_threads(1);
  const Tensor c1 = matmul(a, b);
  const Tensor n1 = matmul_nt(a, bt);
  set_default_pool_threads(4);
  const Tensor c4 = matmul(a, b);
  const Tensor n4 = matmul_nt(a, bt);
  set_default_pool_threads(saved);

  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_EQ(c1[i], c4[i]);
  for (std::size_t i = 0; i < n1.size(); ++i) EXPECT_EQ(n1[i], n4[i]);
}

TEST(Ops, MatmulRejectsEmptyTensors) {
  // Tensor refuses zero extents outright, so no kernel ever sees an empty
  // operand — the degenerate "0-sized matmul" boundary is unrepresentable.
  EXPECT_THROW(Tensor({0, 3}), std::invalid_argument);
  EXPECT_THROW(Tensor({3, 0}), std::invalid_argument);
  // A default-constructed tensor is rank-0, which matmul rejects as not 2-D.
  EXPECT_THROW(matmul(Tensor(), Tensor({1, 1})), std::invalid_argument);
  EXPECT_THROW(matmul_nt(Tensor({1, 1}), Tensor()), std::invalid_argument);
}

TEST(Ops, TransposedVariantsMatchExplicitTranspose) {
  Rng rng(17);
  const Tensor a = Tensor::randn({4, 3}, rng);
  const Tensor b = Tensor::randn({4, 5}, rng);
  const Tensor expected = matmul(transpose(a), b);
  const Tensor got = matmul_tn(a, b);
  ASSERT_TRUE(expected.same_shape(got));
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(expected[i], got[i], 1e-5f);

  const Tensor c = Tensor::randn({3, 4}, rng);
  const Tensor d = Tensor::randn({5, 4}, rng);
  const Tensor e1 = matmul(c, transpose(d));
  const Tensor e2 = matmul_nt(c, d);
  for (std::size_t i = 0; i < e1.size(); ++i) EXPECT_NEAR(e1[i], e2[i], 1e-5f);
}

TEST(Ops, ConvOutSize) {
  EXPECT_EQ(conv_out_size(8, 3, 1, 1), 8);   // same padding
  EXPECT_EQ(conv_out_size(8, 3, 2, 1), 4);   // strided
  EXPECT_EQ(conv_out_size(7, 3, 1, 0), 5);   // valid
}

TEST(Ops, Im2colIdentityKernel) {
  // With a 1x1 kernel, im2col is just a channel-major flatten.
  Tensor x({1, 2, 2, 2});
  for (int i = 0; i < 8; ++i) x[static_cast<std::size_t>(i)] = static_cast<float>(i);
  const Tensor cols = im2col(x, 0, 1, 1, 0);
  EXPECT_EQ(cols.dim(0), 2);
  EXPECT_EQ(cols.dim(1), 4);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(cols[static_cast<std::size_t>(i)], static_cast<float>(i));
}

TEST(Ops, Im2colZeroPadsBorders) {
  Tensor x = Tensor::full({1, 1, 2, 2}, 1.0f);
  const Tensor cols = im2col(x, 0, 3, 1, 1);
  // Centre tap of the first output position sees pixel (0,0) = 1; the
  // top-left tap is padding = 0.
  EXPECT_EQ(cols.at(4, 0), 1.0f);
  EXPECT_EQ(cols.at(0, 0), 0.0f);
}

TEST(Ops, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im_add(y)> — the defining adjoint property,
  // checked with random tensors.
  Rng rng(23);
  const Tensor x = Tensor::randn({1, 3, 6, 6}, rng);
  const int k = 3, stride = 2, pad = 1;
  const Tensor cols = im2col(x, 0, k, stride, pad);
  const Tensor y = Tensor::randn(cols.shape(), rng);
  Tensor back({1, 3, 6, 6});
  col2im_add(y, back, 0, k, stride, pad);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i) lhs += cols[i] * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Ops, SumAndMse) {
  Tensor a = Tensor::full({4}, 2.0f);
  Tensor b = Tensor::full({4}, 3.0f);
  EXPECT_DOUBLE_EQ(sum(a), 8.0);
  EXPECT_DOUBLE_EQ(mse(a, b), 1.0);
}

TEST(Ops, ConvOutSizeCheckedThrowsNamingGeometry) {
  // The happy path agrees with the unchecked helper.
  EXPECT_EQ(conv_out_size_checked(8, 3, 1, 1, "conv"), conv_out_size(8, 3, 1, 1));
  // Kernel overhangs the padded input: output extent would be <= 0.
  try {
    conv_out_size_checked(2, 5, 1, 0, "Conv2d height");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("Conv2d height"), std::string::npos) << msg;
    EXPECT_NE(msg.find("in=2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("kernel=5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("stride=1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pad=0"), std::string::npos) << msg;
  }
  EXPECT_THROW(conv_out_size_checked(8, 3, 0, 1, "s"), std::invalid_argument);
  EXPECT_THROW(conv_out_size_checked(8, 0, 1, 1, "k"), std::invalid_argument);
}

// The *_into kernels are the allocation-free spellings of the allocating
// entry points (which are now thin wrappers around them). Same floats, and a
// warm destination of the wrong shape must be reshaped in place.
TEST(Ops, IntoVariantsMatchAllocatingBitwise) {
  Rng rng(29);
  const Tensor a = Tensor::randn({13, 21}, rng);
  const Tensor b = Tensor::randn({21, 17}, rng);
  const Tensor at = Tensor::randn({21, 13}, rng);
  const Tensor bt = Tensor::randn({17, 21}, rng);

  Tensor out = Tensor::full({2, 2}, 9.0f);  // stale shape and contents
  matmul_into(a, b, out);
  const Tensor c = matmul(a, b);
  ASSERT_TRUE(out.same_shape(c));
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(out[i], c[i]);

  matmul_tn_into(at, b, out);
  const Tensor ct = matmul_tn(at, b);
  ASSERT_TRUE(out.same_shape(ct));
  for (std::size_t i = 0; i < ct.size(); ++i) EXPECT_EQ(out[i], ct[i]);

  matmul_nt_into(a, bt, out);
  const Tensor cn = matmul_nt(a, bt);
  ASSERT_TRUE(out.same_shape(cn));
  for (std::size_t i = 0; i < cn.size(); ++i) EXPECT_EQ(out[i], cn[i]);

  const Tensor x = Tensor::randn({1, 3, 6, 6}, rng);
  const Tensor cols = im2col(x, 0, 3, 1, 1);
  // im2col_into validates rather than reshapes: the caller owns the sizing
  // (conv acquires the exact shape from its workspace).
  Tensor cols_out = Tensor::full(cols.shape(), 5.0f);
  im2col_into(x, 0, 3, 1, 1, cols_out);
  EXPECT_THROW(im2col_into(x, 0, 3, 1, 1, out), std::invalid_argument);
  ASSERT_TRUE(cols_out.same_shape(cols));
  for (std::size_t i = 0; i < cols.size(); ++i) EXPECT_EQ(cols_out[i], cols[i]);
}

// The fused conv epilogue: bias (and optionally ReLU) applied inside the
// GEMM after full k-accumulation must be bit-identical to the separate
// passes — the PR-1/PR-2 determinism pins depend on it.
TEST(Ops, FusedBiasEpilogueMatchesSeparatePassesBitwise) {
  Rng rng(31);
  const int m = 9, k = 27, n = 40;
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  const Tensor bias = Tensor::randn({m}, rng);

  Tensor ref = matmul(a, b);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j)
      ref.at(i, j) += bias[static_cast<std::size_t>(i)];

  Tensor fused({m, n});
  matmul_bias_into(a, b, bias.data(), fused);
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(fused[i], ref[i]);

  Tensor relu_ref = ref;
  for (std::size_t i = 0; i < relu_ref.size(); ++i)
    relu_ref[i] = relu_ref[i] > 0.0f ? relu_ref[i] : 0.0f;
  Tensor fused_relu({m, n});
  matmul_bias_into(a, b, bias.data(), fused_relu, /*fuse_relu=*/true);
  for (std::size_t i = 0; i < relu_ref.size(); ++i)
    EXPECT_EQ(fused_relu[i], relu_ref[i]);

  // Null bias with fused ReLU: epilogue is just the clamp.
  Tensor no_bias = matmul(a, b);
  for (std::size_t i = 0; i < no_bias.size(); ++i)
    no_bias[i] = no_bias[i] > 0.0f ? no_bias[i] : 0.0f;
  Tensor fused_nb({m, n});
  matmul_bias_into(a, b, nullptr, fused_nb, /*fuse_relu=*/true);
  for (std::size_t i = 0; i < no_bias.size(); ++i)
    EXPECT_EQ(fused_nb[i], no_bias[i]);
}

TEST(Workspace, MissThenHitOnReacquire) {
  Workspace ws;
  const auto s0 = ws.stats();
  EXPECT_EQ(s0.hits, 0u);
  EXPECT_EQ(s0.misses, 0u);
  {
    WorkspaceTensor t = ws.acquire({4, 5});
    EXPECT_EQ(t->shape(), (std::vector<int>{4, 5}));
    const auto s1 = ws.stats();
    EXPECT_EQ(s1.misses, 1u);
    EXPECT_EQ(s1.outstanding, 1u);
    EXPECT_EQ(s1.bytes_allocated, 4u * 5u * sizeof(float));
  }
  const auto s2 = ws.stats();
  EXPECT_EQ(s2.outstanding, 0u);
  EXPECT_EQ(s2.cached, 1u);
  {
    // Same capacity (different shape): must be served from the free list.
    WorkspaceTensor t = ws.acquire({2, 10});
    EXPECT_EQ(t->shape(), (std::vector<int>{2, 10}));
    const auto s3 = ws.stats();
    EXPECT_EQ(s3.hits, 1u);
    EXPECT_EQ(s3.misses, 1u);
    EXPECT_EQ(s3.bytes_allocated, s2.bytes_allocated) << "hit must not allocate";
  }
}

TEST(Workspace, SmallestAdequateBufferWins) {
  Workspace ws;
  {
    WorkspaceTensor big = ws.acquire({100});
    WorkspaceTensor small = ws.acquire({10});
  }
  EXPECT_EQ(ws.stats().cached, 2u);
  {
    // A request fitting the small buffer must not burn the big one.
    WorkspaceTensor t = ws.acquire({8});
    EXPECT_EQ(t->capacity(), 10u);
    WorkspaceTensor u = ws.acquire({60});
    EXPECT_EQ(u->capacity(), 100u);
  }
  EXPECT_EQ(ws.stats().hits, 2u);
  EXPECT_EQ(ws.stats().misses, 2u);
}

TEST(Workspace, ClearDropsCachedBuffers) {
  Workspace ws;
  { WorkspaceTensor t = ws.acquire({16}); }
  EXPECT_EQ(ws.stats().cached, 1u);
  ws.clear();
  EXPECT_EQ(ws.stats().cached, 0u);
  WorkspaceTensor t = ws.acquire({16});  // re-warms with a fresh miss
  EXPECT_EQ(ws.stats().misses, 2u);
}

TEST(Workspace, AcquireZeroedIsZeroFilled) {
  Workspace ws;
  {
    WorkspaceTensor t = ws.acquire({8});
    for (std::size_t i = 0; i < t->size(); ++i) (*t)[i] = 7.0f;  // dirty it
  }
  WorkspaceTensor z = ws.acquire_zeroed({8});
  for (std::size_t i = 0; i < z->size(); ++i) EXPECT_EQ((*z)[i], 0.0f);
}

TEST(Workspace, MovedFromCheckoutDoesNotDoubleRelease) {
  Workspace ws;
  {
    WorkspaceTensor a = ws.acquire({4});
    WorkspaceTensor b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_EQ(ws.stats().outstanding, 1u);
  }
  EXPECT_EQ(ws.stats().outstanding, 0u);
  EXPECT_EQ(ws.stats().cached, 1u);
}

TEST(Workspace, LocalIsPerThreadAndStable) {
  Workspace& a = Workspace::local();
  Workspace& b = Workspace::local();
  EXPECT_EQ(&a, &b);
}

TEST(Workspace, FailedAcquireLeavesCountersUntouched) {
  // acquire() validates the shape before any counter moves or any buffer
  // leaves the free list, so a failed checkout can never leak `outstanding`
  // (the exception-safety fix this PR's workspace audit landed).
  Workspace ws;
  { WorkspaceTensor warm = ws.acquire({8}); }
  const Workspace::Stats before = ws.stats();
  EXPECT_THROW(ws.acquire({0, 3}), std::invalid_argument);
  EXPECT_THROW(ws.acquire({-2}), std::invalid_argument);
  EXPECT_THROW(ws.acquire_zeroed({4, -1}), std::invalid_argument);
  const Workspace::Stats after = ws.stats();
  EXPECT_EQ(after.outstanding, before.outstanding);
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.cached, before.cached);
  // The workspace still works after the failures.
  WorkspaceTensor ok = ws.acquire({8});
  EXPECT_EQ(ws.stats().outstanding, before.outstanding + 1);
}

// ---------------------------------------------------------------------------
// Checked-build negative tests: each detector must FIRE on the violation it
// guards. The blocks compile out of release builds, where the same accesses
// are the caller's contract to keep in range (tools/run_checks.sh's `checked`
// leg runs them with every check on).
// ---------------------------------------------------------------------------

#if DCSR_BOUNDS_CHECK
TEST(CheckedBounds, FlatIndexPastEndThrowsNamingSiteAndShape) {
  Tensor t({2, 3});
  try {
    (void)t[6];
    FAIL() << "expected TensorBoundsError";
  } catch (const TensorBoundsError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("Tensor::operator[]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("6"), std::string::npos) << msg;
  }
  // TensorBoundsError slots into std::out_of_range, matching the codec's
  // BitstreamError hierarchy, so generic catch sites keep working.
  EXPECT_THROW((void)t[100], std::out_of_range);
}

TEST(CheckedBounds, At4dOutOfRangeThrows) {
  Tensor t({1, 2, 4, 4});
  EXPECT_NO_THROW(t.at(0, 1, 3, 3));
  EXPECT_THROW(t.at(1, 0, 0, 0), TensorBoundsError);
  EXPECT_THROW(t.at(0, 2, 0, 0), TensorBoundsError);
  EXPECT_THROW(t.at(0, 0, 4, 0), TensorBoundsError);
  EXPECT_THROW(t.at(0, 0, 0, -1), TensorBoundsError);
}

TEST(CheckedBounds, ViewPastEndThrows) {
  Tensor t({8});
  EXPECT_NO_THROW(t.view(0, 8));
  EXPECT_NO_THROW(t.view(8, 0));
  EXPECT_THROW(t.view(1, 8), TensorBoundsError);
  EXPECT_THROW(t.view(9, 0), TensorBoundsError);
}

TEST(CheckedBounds, SliceOutOfRangeThrows) {
  Tensor t({3, 4});
  EXPECT_NO_THROW(t.slice(2));
  EXPECT_THROW(t.slice(3), TensorBoundsError);
  EXPECT_THROW(t.slice(-1), TensorBoundsError);
}
#endif  // DCSR_BOUNDS_CHECK

#if DCSR_POISON_WORKSPACE
TEST(CheckedPoison, AcquireHandsOutSignallingNaNBits) {
  Workspace ws;
  WorkspaceTensor t = ws.acquire({16});
  for (std::size_t i = 0; i < t->size(); ++i) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &(*t)[i], sizeof bits);
    ASSERT_EQ(bits, kWorkspacePoisonBits) << "element " << i;
  }
}

TEST(CheckedPoison, ReleaseRepoisonsTheBuffer) {
  // A stale read through a recycled buffer must see NaN, not the previous
  // checkout's data — release() re-poisons before parking on the free list.
  Workspace ws;
  {
    WorkspaceTensor t = ws.acquire({16});
    for (std::size_t i = 0; i < t->size(); ++i) (*t)[i] = 7.0f;
  }
  WorkspaceTensor again = ws.acquire({16});
  EXPECT_EQ(ws.stats().hits, 1u);  // same buffer came back
  for (std::size_t i = 0; i < again->size(); ++i)
    ASSERT_TRUE(std::isnan((*again)[i])) << "element " << i;
}

TEST(CheckedPoison, AcquireZeroedOverridesThePoison) {
  Workspace ws;
  { WorkspaceTensor dirty = ws.acquire({8}); }
  WorkspaceTensor z = ws.acquire_zeroed({8});
  for (std::size_t i = 0; i < z->size(); ++i) EXPECT_EQ((*z)[i], 0.0f);
}
#endif  // DCSR_POISON_WORKSPACE

}  // namespace
}  // namespace dcsr
