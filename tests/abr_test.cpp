#include <gtest/gtest.h>

#include "stream/abr.hpp"

namespace dcsr::stream {
namespace {

// Three-rung ladder: 100 / 400 / 1600 bytes per 4-second segment, base
// qualities 20/26/32 dB, enhanced (dcSR) qualities +4 dB at the lower rungs.
std::vector<Rung> test_ladder(int segments) {
  std::vector<Rung> ladder(3);
  const std::uint64_t sizes[3] = {100, 400, 1600};
  const double base[3] = {20.0, 26.0, 32.0};
  const double enhanced[3] = {26.0, 30.5, 33.0};
  for (int r = 0; r < 3; ++r) {
    ladder[static_cast<std::size_t>(r)].crf = 51 - r * 10;
    ladder[static_cast<std::size_t>(r)].segment_bytes.assign(
        static_cast<std::size_t>(segments), sizes[r]);
    ladder[static_cast<std::size_t>(r)].base_quality_db = base[r];
    ladder[static_cast<std::size_t>(r)].enhanced_quality_db = enhanced[r];
  }
  return ladder;
}

ThroughputTrace constant_trace(double bytes_per_s, int seconds = 600) {
  return {std::vector<double>(static_cast<std::size_t>(seconds), bytes_per_s)};
}

TEST(ThroughputTrace, BytesBetweenIntegratesSlices) {
  ThroughputTrace t{{100.0, 200.0, 400.0}};
  EXPECT_DOUBLE_EQ(t.bytes_between(0.0, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(t.bytes_between(0.5, 1.5), 50.0 + 100.0);
  EXPECT_DOUBLE_EQ(t.bytes_between(0.0, 3.0), 700.0);
  // Last value repeats past the end.
  EXPECT_DOUBLE_EQ(t.bytes_between(3.0, 5.0), 800.0);
  EXPECT_DOUBLE_EQ(t.bytes_between(2.0, 2.0), 0.0);
}

TEST(ThroughputTrace, SecondsToDownloadInvertsBytes) {
  ThroughputTrace t{{100.0, 200.0}};
  EXPECT_DOUBLE_EQ(t.seconds_to_download(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(t.seconds_to_download(0.0, 200.0), 1.5);
  EXPECT_DOUBLE_EQ(t.seconds_to_download(1.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(t.seconds_to_download(0.0, 0.0), 0.0);
}

TEST(ThroughputTrace, NegativeTimesClampToZero) {
  // A negative clock used to be cast straight to std::size_t (UB); the trace
  // has no past, so negative times clamp to 0.
  ThroughputTrace t{{100.0, 200.0, 400.0}};
  EXPECT_DOUBLE_EQ(t.bytes_between(-2.0, 1.0), t.bytes_between(0.0, 1.0));
  EXPECT_DOUBLE_EQ(t.bytes_between(-5.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(t.seconds_to_download(-3.0, 100.0),
                   t.seconds_to_download(0.0, 100.0));
  EXPECT_DOUBLE_EQ(t.seconds_to_download(-0.5, 50.0), 0.5);
}

TEST(ThroughputTrace, FractionalAndBeyondTraceTimes) {
  ThroughputTrace t{{100.0, 200.0}};
  // Fractional start inside a slice.
  EXPECT_DOUBLE_EQ(t.seconds_to_download(0.25, 25.0), 0.25);
  EXPECT_DOUBLE_EQ(t.seconds_to_download(0.5, 150.0), 1.0);
  // Past the trace end the last value repeats.
  EXPECT_DOUBLE_EQ(t.seconds_to_download(10.5, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(t.bytes_between(10.0, 12.5), 500.0);
  // Times far beyond double's integer precision (floor(t)+1 == t) must not
  // hang or misindex: the repeated-tail closed form takes over.
  EXPECT_DOUBLE_EQ(t.bytes_between(1e16, 1e16 + 2.0), 400.0);
  EXPECT_DOUBLE_EQ(t.seconds_to_download(1e16, 200.0), 1.0);
}

TEST(ThroughputTrace, DeadLinkReturnsSentinel) {
  ThroughputTrace dead{std::vector<double>(10, 0.0)};
  EXPECT_GE(dead.seconds_to_download(0.0, 1.0), kDeadNetworkSeconds);
  EXPECT_GE(ThroughputTrace{}.seconds_to_download(0.0, 1.0), kDeadNetworkSeconds);
  // A link that would take > 1e7 s is as good as dead.
  ThroughputTrace glacial{{1e-6}};
  EXPECT_GE(glacial.seconds_to_download(0.0, 1e6), kDeadNetworkSeconds);
}

TEST(Abr, DeadNetworkFromStartAbortsWithCleanAccounting) {
  // An all-zero trace used to leak the 1e18 sentinel into clock/rebuffer/
  // EWMA arithmetic, yielding nonsense totals; now the session aborts with
  // an explicit flag and zero accounted traffic.
  const auto ladder = test_ladder(8);
  const ThroughputTrace dead{std::vector<double>(20, 0.0)};
  const AbrResult r = simulate_abr(ladder, {}, dead, AbrConfig{});
  EXPECT_TRUE(r.aborted_dead_network);
  EXPECT_TRUE(r.log.empty());
  EXPECT_EQ(r.total_bytes, 0u);
  EXPECT_DOUBLE_EQ(r.rebuffer_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.startup_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_quality_db, 0.0);  // no divide-by-zero either
}

TEST(Abr, DeadNetworkMidSessionStopsAccountingAtStall) {
  const auto ladder = test_ladder(8);
  // One good second delivers segment 0; then the link dies for good.
  ThroughputTrace trace{std::vector<double>(30, 0.0)};
  trace.bytes_per_second[0] = 200.0;
  const AbrResult r = simulate_abr(ladder, {}, trace, AbrConfig{});
  EXPECT_TRUE(r.aborted_dead_network);
  ASSERT_EQ(r.log.size(), 1u);
  EXPECT_EQ(r.total_bytes, r.log[0].bytes);
  // The sentinel never reached the totals.
  EXPECT_LT(r.rebuffer_seconds, 1e6);
  EXPECT_GT(r.mean_quality_db, 0.0);
}

TEST(Abr, HealthySessionsNeverAbort) {
  const auto ladder = test_ladder(20);
  const AbrResult r = simulate_abr(ladder, {}, constant_trace(4000.0), AbrConfig{});
  EXPECT_FALSE(r.aborted_dead_network);
  EXPECT_EQ(r.log.size(), 20u);
}

TEST(Abr, StartupStallIsReportedSeparately) {
  // Bottom rung: 100 B over 25 B/s = 4 s per segment; startup buffer of 8 s
  // means two segments (8 s of wall clock) pass before playback starts.
  // That time was previously counted nowhere.
  const auto ladder = test_ladder(10);
  AbrConfig cfg;
  cfg.startup_buffer_seconds = 8.0;
  const AbrResult r = simulate_abr(ladder, {}, constant_trace(25.0), cfg);
  EXPECT_DOUBLE_EQ(r.startup_seconds, 8.0);
  EXPECT_DOUBLE_EQ(r.log[0].startup_seconds, 4.0);
  EXPECT_DOUBLE_EQ(r.log[1].startup_seconds, 4.0);
  EXPECT_DOUBLE_EQ(r.log[2].startup_seconds, 0.0);
  // Steady state after startup: downloads exactly keep pace, no rebuffer.
  EXPECT_DOUBLE_EQ(r.rebuffer_seconds, 0.0);
  // The startup wait lowers QoE through its own weighted term.
  QoeWeights no_startup;
  no_startup.startup_penalty = 0.0;
  EXPECT_LT(qoe_score(r), qoe_score(r, no_startup));
  EXPECT_NEAR(qoe_score(r, no_startup) - qoe_score(r),
              QoeWeights{}.startup_penalty * 8.0 /
                  static_cast<double>(r.log.size()),
              1e-12);
}

TEST(Abr, StepwiseSessionMatchesSimulateAbr) {
  // simulate_abr is now a loop over AbrSession — drive the stepper by hand
  // and require bit-identical results, so the two forms cannot drift.
  const auto ladder = test_ladder(25);
  ThroughputTrace trace = constant_trace(900.0, 300);
  for (std::size_t s = 40; s < 70; ++s) trace.bytes_per_second[s] = 80.0;
  const std::vector<std::uint64_t> model_bytes(25, 300);

  AbrConfig cfg;
  const AbrResult whole = simulate_abr(ladder, model_bytes, trace, cfg);

  AbrSession session(ladder, cfg);
  AbrResult manual;
  for (std::size_t i = 0; i < session.segment_count(); ++i) {
    const int rung = session.choose_rung(i);
    const AbrSegmentLog log = session.step(
        i, rung, static_cast<double>(model_bytes[i]), 0.0, trace);
    ASSERT_FALSE(session.dead_network());
    manual.rebuffer_seconds += log.rebuffer_seconds;
    manual.total_bytes += log.bytes;
    manual.log.push_back(log);
  }
  ASSERT_EQ(manual.log.size(), whole.log.size());
  for (std::size_t i = 0; i < whole.log.size(); ++i) {
    EXPECT_EQ(manual.log[i].rung, whole.log[i].rung);
    EXPECT_EQ(manual.log[i].bytes, whole.log[i].bytes);
    EXPECT_DOUBLE_EQ(manual.log[i].download_seconds,
                     whole.log[i].download_seconds);
    EXPECT_DOUBLE_EQ(manual.log[i].rebuffer_seconds,
                     whole.log[i].rebuffer_seconds);
  }
  EXPECT_DOUBLE_EQ(manual.rebuffer_seconds, whole.rebuffer_seconds);
  EXPECT_DOUBLE_EQ(session.startup_seconds(), whole.startup_seconds);
  EXPECT_EQ(manual.total_bytes, whole.total_bytes);
}

TEST(Abr, FastNetworkClimbsToTopRung) {
  const auto ladder = test_ladder(20);
  AbrConfig cfg;
  // 4000 B/s >> 1600 B / 4 s: everything fits.
  const AbrResult r = simulate_abr(ladder, {}, constant_trace(4000.0), cfg);
  // After the first (conservative) segment, the top rung should dominate.
  int top = 0;
  for (const auto& log : r.log)
    if (log.rung == 2) ++top;
  EXPECT_GE(top, 18);
  EXPECT_DOUBLE_EQ(r.rebuffer_seconds, 0.0);
  EXPECT_GT(r.mean_quality_db, 31.0);
}

TEST(Abr, SlowNetworkStaysLow) {
  const auto ladder = test_ladder(20);
  AbrConfig cfg;
  // 50 B/s: only the bottom rung's 25 B/s fits under safety 0.8.
  const AbrResult r = simulate_abr(ladder, {}, constant_trace(50.0), cfg);
  for (const auto& log : r.log) EXPECT_EQ(log.rung, 0);
}

TEST(Abr, ThroughputDropTriggersDownswitch) {
  const auto ladder = test_ladder(30);
  AbrConfig cfg;
  ThroughputTrace trace = constant_trace(4000.0, 400);
  for (std::size_t s = 60; s < trace.bytes_per_second.size(); ++s)
    trace.bytes_per_second[s] = 60.0;  // cliff at t = 60 s
  const AbrResult r = simulate_abr(ladder, {}, trace, cfg);
  EXPECT_EQ(r.log.front().rung, 0);          // conservative start
  bool saw_top = false, ends_low = true;
  for (const auto& log : r.log)
    if (log.rung == 2) saw_top = true;
  for (std::size_t i = r.log.size() - 3; i < r.log.size(); ++i)
    ends_low = ends_low && r.log[i].rung == 0;
  EXPECT_TRUE(saw_top);
  EXPECT_TRUE(ends_low);
}

TEST(Abr, RebufferAccountedWhenNetworkDies) {
  const auto ladder = test_ladder(6);
  AbrConfig cfg;
  cfg.startup_buffer_seconds = 0.0;  // start playing immediately
  // 30 B/s: bottom rung needs 100 B / 4 s = 25 B/s — playable but each
  // download takes 3.33 s while only 4 s of content is buffered at a time;
  // throw in a dead zone to force a stall.
  ThroughputTrace trace = constant_trace(30.0, 100);
  for (std::size_t s = 4; s < 30; ++s) trace.bytes_per_second[s] = 1.0;
  const AbrResult r = simulate_abr(ladder, {}, trace, cfg);
  EXPECT_GT(r.rebuffer_seconds, 1.0);
}

TEST(Abr, DcsrAwareDeliversQualityWithFewerBytes) {
  // The paper's suggestion: with micro models recovering quality, the ABR
  // can ride a lower rung. Target 26 dB: rung 0's *enhanced* quality already
  // reaches it.
  const auto ladder = test_ladder(20);
  AbrConfig classic;
  AbrConfig aware = classic;
  aware.dcsr_aware = true;
  aware.target_quality_db = 26.0;

  const auto net = constant_trace(4000.0);
  const AbrResult r_classic = simulate_abr(ladder, {}, net, classic);
  const AbrResult r_aware = simulate_abr(ladder, {}, net, aware);

  EXPECT_LT(r_aware.total_bytes, r_classic.total_bytes / 4);
  EXPECT_GE(r_aware.mean_quality_db, 26.0);
  EXPECT_DOUBLE_EQ(r_aware.rebuffer_seconds, 0.0);
}

TEST(Abr, ModelBytesChargedToSegments) {
  const auto ladder = test_ladder(4);
  std::vector<std::uint64_t> model_bytes{500, 0, 500, 0};
  const auto net = constant_trace(4000.0);
  AbrConfig cfg;
  const AbrResult with_models = simulate_abr(ladder, model_bytes, net, cfg);
  const AbrResult without = simulate_abr(ladder, {}, net, cfg);
  EXPECT_EQ(with_models.total_bytes, without.total_bytes + 1000);
  EXPECT_EQ(with_models.log[0].bytes, without.log[0].bytes + 500);
  EXPECT_EQ(with_models.log[1].bytes, without.log[1].bytes);
}

TEST(AbrBufferBased, LowBufferStaysLowHighBufferClimbs) {
  const auto ladder = test_ladder(40);
  AbrConfig cfg;
  cfg.policy = AbrPolicy::kBufferBased;
  cfg.max_buffer_seconds = 20.0;
  // A fast network lets the buffer fill; early segments (small buffer)
  // should be low rungs, late segments (full buffer) top rungs.
  const AbrResult r = simulate_abr(ladder, {}, constant_trace(10000.0), cfg);
  EXPECT_EQ(r.log.front().rung, 0);
  int top_late = 0;
  for (std::size_t i = r.log.size() - 10; i < r.log.size(); ++i)
    if (r.log[i].rung == 2) ++top_late;
  EXPECT_GE(top_late, 8);
  EXPECT_DOUBLE_EQ(r.rebuffer_seconds, 0.0);
}

TEST(AbrBufferBased, SlowNetworkKeepsRungMostlyLow) {
  const auto ladder = test_ladder(20);
  AbrConfig cfg;
  cfg.policy = AbrPolicy::kBufferBased;
  // 30 B/s barely carries the bottom rung: the buffer mostly sits in the
  // reservoir. (BBA-style policies can overshoot briefly once the buffer
  // creeps above the reservoir — that oscillation is expected.)
  const AbrResult r = simulate_abr(ladder, {}, constant_trace(30.0), cfg);
  EXPECT_LT(r.mean_rung, 0.5);
  int at_bottom = 0;
  for (const auto& log : r.log)
    if (log.rung == 0) ++at_bottom;
  EXPECT_GE(at_bottom, static_cast<int>(r.log.size() * 3 / 4));
}

TEST(AbrBufferBased, NeverExceedsLadderRange) {
  const auto ladder = test_ladder(30);
  AbrConfig cfg;
  cfg.policy = AbrPolicy::kBufferBased;
  cfg.max_buffer_seconds = 8.0;  // tiny cushion
  const AbrResult r = simulate_abr(ladder, {}, constant_trace(5000.0), cfg);
  for (const auto& log : r.log) {
    EXPECT_GE(log.rung, 0);
    EXPECT_LE(log.rung, 2);
  }
}

TEST(Qoe, PenalisesSwitchesAndRebuffering) {
  AbrResult steady;
  for (int i = 0; i < 10; ++i)
    steady.log.push_back({.segment = i, .rung = 1, .quality_db = 30.0});
  steady.mean_quality_db = 30.0;

  AbrResult oscillating = steady;
  for (int i = 0; i < 10; ++i)
    oscillating.log[static_cast<std::size_t>(i)].quality_db = (i % 2) ? 34.0 : 26.0;
  oscillating.mean_quality_db = 30.0;

  AbrResult stalling = steady;
  stalling.rebuffer_seconds = 5.0;

  const double q_steady = qoe_score(steady);
  EXPECT_DOUBLE_EQ(q_steady, 30.0);
  EXPECT_LT(qoe_score(oscillating), q_steady);
  EXPECT_LT(qoe_score(stalling), q_steady);
  // Custom weights scale the penalties.
  EXPECT_GT(qoe_score(stalling, {.switch_penalty = 1.0, .rebuffer_penalty = 0.0}),
            qoe_score(stalling));
}

TEST(Qoe, EmptyResultIsZero) {
  EXPECT_DOUBLE_EQ(qoe_score(AbrResult{}), 0.0);
}

TEST(Abr, ValidatesInputs) {
  EXPECT_THROW(simulate_abr({}, {}, constant_trace(100.0), AbrConfig{}),
               std::invalid_argument);
  auto ladder = test_ladder(4);
  ladder[1].segment_bytes.pop_back();
  EXPECT_THROW(simulate_abr(ladder, {}, constant_trace(100.0), AbrConfig{}),
               std::invalid_argument);
  EXPECT_THROW(simulate_abr(test_ladder(4), {1, 2}, constant_trace(100.0),
                            AbrConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcsr::stream
