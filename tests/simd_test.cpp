// Simd.*: pins every SIMD kernel bitwise against the scalar reference
// oracle, per available backend. These are the tests that make the backends
// interchangeable: if any of them fails, runtime dispatch would make results
// depend on the host CPU, which breaks the repo's determinism contract.
//
// The whole suite also runs once per backend at the ctest level —
// tools/run_checks.sh's `simd` leg sets DCSR_SIMD and re-runs tier-1 — so
// the cross-kernel tests here focus on per-family pins and the dispatcher
// surface itself.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "codec/block_coder.hpp"
#include "codec/dct.hpp"
#include "codec/motion.hpp"
#include "codec/quant.hpp"
#include "image/convert.hpp"
#include "image/frame.hpp"
#include "simd/dispatch.hpp"

namespace dcsr {
namespace {

using simd::Backend;

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (Backend b :
       {Backend::kScalar, Backend::kSse2, Backend::kAvx2, Backend::kNeon})
    if (simd::table_for(b) != nullptr) out.push_back(b);
  return out;
}

std::vector<Backend> simd_backends() {
  std::vector<Backend> out;
  for (Backend b : available_backends())
    if (b != Backend::kScalar) out.push_back(b);
  return out;
}

template <typename T>
::testing::AssertionResult BitsEq(const T* a, const T* b, std::size_t n,
                                  const char* what, Backend backend) {
  for (std::size_t i = 0; i < n; ++i)
    if (std::memcmp(&a[i], &b[i], sizeof(T)) != 0)
      return ::testing::AssertionFailure()
             << what << " differs from scalar oracle on backend "
             << simd::backend_name(backend) << " at element " << i;
  return ::testing::AssertionSuccess();
}

// --- dispatcher surface -----------------------------------------------------

TEST(Simd, ParseBackendAcceptsExactNamesOnly) {
  EXPECT_EQ(simd::parse_backend("scalar"), Backend::kScalar);
  EXPECT_EQ(simd::parse_backend("sse2"), Backend::kSse2);
  EXPECT_EQ(simd::parse_backend("avx2"), Backend::kAvx2);
  EXPECT_EQ(simd::parse_backend("neon"), Backend::kNeon);
  EXPECT_THROW(simd::parse_backend(""), simd::SimdDispatchError);
  EXPECT_THROW(simd::parse_backend("AVX2"), simd::SimdDispatchError);
  EXPECT_THROW(simd::parse_backend("avx2 "), simd::SimdDispatchError);
  EXPECT_THROW(simd::parse_backend("avx512"), simd::SimdDispatchError);
}

TEST(Simd, BackendNamesRoundTrip) {
  for (Backend b :
       {Backend::kScalar, Backend::kSse2, Backend::kAvx2, Backend::kNeon})
    EXPECT_EQ(simd::parse_backend(simd::backend_name(b)), b);
}

TEST(Simd, ScalarAlwaysAvailable) {
  EXPECT_TRUE(simd::host_supports(Backend::kScalar));
  ASSERT_NE(simd::table_for(Backend::kScalar), nullptr);
  EXPECT_EQ(simd::table_for(Backend::kScalar)->id, Backend::kScalar);
}

TEST(Simd, TableMatchesHostSupport) {
  for (Backend b :
       {Backend::kScalar, Backend::kSse2, Backend::kAvx2, Backend::kNeon})
    EXPECT_EQ(simd::table_for(b) != nullptr, simd::host_supports(b))
        << simd::backend_name(b);
}

TEST(Simd, UnsupportedBackendScopedSwapThrows) {
  for (Backend b : {Backend::kSse2, Backend::kAvx2, Backend::kNeon}) {
    if (!simd::host_supports(b)) {
      EXPECT_THROW(simd::ScopedBackendForTest guard(b),
                   simd::SimdDispatchError);
    }
  }
}

TEST(Simd, ScopedSwapChangesAndRestoresActiveBackend) {
  const Backend before = simd::active_backend();
  {
    simd::ScopedBackendForTest guard(Backend::kScalar);
    EXPECT_EQ(simd::active_backend(), Backend::kScalar);
  }
  EXPECT_EQ(simd::active_backend(), before);
}

TEST(Simd, ReportNamesActiveBackendAndEveryFamily) {
  const std::string r = simd::report();
  EXPECT_NE(r.find("dcsr-simd: backend="), std::string::npos) << r;
  for (const char* fam : {"dct=", "idct=", "dequant_idct=", "quant=",
                          "gemm=", "im2col=", "yuv2rgb=", "mc="})
    EXPECT_NE(r.find(fam), std::string::npos) << r;
}

TEST(Simd, EveryFamilyOriginIsInstalled) {
  for (Backend b : available_backends()) {
    const simd::KernelTable* t = simd::table_for(b);
    for (int f = 0; f < simd::kNumFamilies; ++f) {
      // Origins are real backends, and never "faster" than the table's own
      // id (a scalar table must not claim avx2 kernels).
      EXPECT_NE(simd::family_name(f), nullptr);
      if (b == Backend::kScalar) {
        EXPECT_EQ(t->origin[f], Backend::kScalar) << simd::family_name(f);
      }
    }
  }
}

// --- 8x8 transforms: exhaustive impulses + random sweeps --------------------

TEST(Simd, DctIdctImpulsesBitwise) {
  const auto& sc = simd::scalar_table();
  for (Backend b : simd_backends()) {
    const simd::KernelTable* t = simd::table_for(b);
    for (int i = 0; i < 64; ++i) {
      float in[64] = {};
      in[i] = 1.0f;
      float ref[64], got[64];
      sc.dct8x8(in, ref);
      t->dct8x8(in, got);
      ASSERT_TRUE(BitsEq(ref, got, 64, "dct8x8 impulse", b)) << "i=" << i;
      sc.idct8x8(in, ref);
      t->idct8x8(in, got);
      ASSERT_TRUE(BitsEq(ref, got, 64, "idct8x8 impulse", b)) << "i=" << i;
    }
  }
}

TEST(Simd, DctIdctRandomSweepBitwise) {
  const auto& sc = simd::scalar_table();
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (int it = 0; it < 2000; ++it) {
    float in[64];
    for (auto& v : in) v = dist(rng);
    float ref_d[64], ref_i[64];
    sc.dct8x8(in, ref_d);
    sc.idct8x8(in, ref_i);
    for (Backend b : simd_backends()) {
      const simd::KernelTable* t = simd::table_for(b);
      float got[64];
      t->dct8x8(in, got);
      ASSERT_TRUE(BitsEq(ref_d, got, 64, "dct8x8", b));
      t->idct8x8(in, got);
      ASSERT_TRUE(BitsEq(ref_i, got, 64, "idct8x8", b));
    }
  }
}

TEST(Simd, FusedDequantIdctMatchesTwoStepBitwise) {
  const auto& sc = simd::scalar_table();
  std::mt19937 rng(11);
  codec::Quantizer q(38);
  for (int it = 0; it < 2000; ++it) {
    std::int32_t levels[64];
    for (auto& l : levels) l = static_cast<std::int32_t>(rng() % 201) - 100;
    const float* steps = q.steps(it % 2 == 0);
    // Scalar fused == scalar two-step: the fusion must be a pure call-count
    // optimisation, not a numeric change.
    float deq[64], two[64], fused[64];
    sc.dequantize_block(levels, steps, deq);
    sc.idct8x8(deq, two);
    sc.dequant_idct8x8(levels, steps, fused);
    ASSERT_TRUE(
        BitsEq(two, fused, 64, "fused dequant_idct", Backend::kScalar));
    for (Backend b : simd_backends()) {
      const simd::KernelTable* t = simd::table_for(b);
      float got[64];
      t->dequant_idct8x8(levels, steps, got);
      ASSERT_TRUE(BitsEq(fused, got, 64, "dequant_idct8x8", b));
    }
  }
}

// --- quantiser: exhaustive near-tie inputs ----------------------------------

TEST(Simd, QuantizeHalfTiesBitwise) {
  const auto& sc = simd::scalar_table();
  codec::Quantizer q(38);
  const float* steps = q.steps(true);
  std::mt19937 rng(13);
  std::uniform_real_distribution<float> dist(-4.0f, 4.0f);
  for (int it = 0; it < 4000; ++it) {
    float coeffs[64];
    for (int i = 0; i < 64; ++i) {
      if (it % 3 == 0) {
        // Exact n+0.5 multiples of the step and their ulp neighbours: the
        // round-half-away-from-zero boundary where an inexact SIMD rounding
        // emulation would first diverge.
        float t = static_cast<float>(static_cast<int>(rng() % 2001) - 1000) +
                  0.5f;
        if (it % 9 == 0) t = std::nextafter(t, 0.0f);
        if (it % 9 == 3) t = std::nextafter(t, t * 4.0f + 10.0f);
        coeffs[i] = t * steps[i];
      } else {
        coeffs[i] = dist(rng);
      }
    }
    std::int32_t ref[64];
    sc.quantize_block(coeffs, steps, ref);
    float ref_deq[64];
    sc.dequantize_block(ref, steps, ref_deq);
    for (Backend b : simd_backends()) {
      const simd::KernelTable* t = simd::table_for(b);
      std::int32_t got[64];
      t->quantize_block(coeffs, steps, got);
      ASSERT_TRUE(BitsEq(ref, got, 64, "quantize_block", b));
      float got_deq[64];
      t->dequantize_block(ref, steps, got_deq);
      ASSERT_TRUE(BitsEq(ref_deq, got_deq, 64, "dequantize_block", b));
    }
  }
}

TEST(Simd, QuantizeMatchesLroundReference) {
  // The scalar oracle itself must implement round-half-away-from-zero.
  const auto& sc = simd::scalar_table();
  float coeffs[64];
  float steps[64];
  for (int i = 0; i < 64; ++i) steps[i] = 1.0f;
  const float cases[] = {0.0f, 0.49f, 0.5f, 0.51f, -0.49f, -0.5f, -0.51f,
                         1.5f, -1.5f, 2.5f, -2.5f, 100.5f, -100.5f};
  for (int i = 0; i < 64; ++i) coeffs[i] = cases[i % 13];
  std::int32_t got[64];
  sc.quantize_block(coeffs, steps, got);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(got[i], std::lround(coeffs[i])) << coeffs[i];
}

// --- GEMM tile: seeded sweeps over both A layouts ---------------------------

TEST(Simd, GemmTileSeededSweepBitwise) {
  const auto& sc = simd::scalar_table();
  std::mt19937 rng(17);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  for (int it = 0; it < 300; ++it) {
    // Odd k values cover the tail of the accumulation chain; ldb/ldc wider
    // than 16 cover strided panels.
    const int kn = 1 + static_cast<int>(rng() % 300);
    const std::size_t ldb = 16 + (rng() % 3) * 8, ldc = 16 + (rng() % 3) * 8;
    // a_rs/a_ks: row-major (matmul) and transposed (matmul_tn) layouts.
    const bool tn = (it % 2) != 0;
    const std::size_t a_rs = tn ? 1 : static_cast<std::size_t>(kn);
    const std::size_t a_ks = tn ? 6 : 1;
    std::vector<float> A(static_cast<std::size_t>(6) * kn);
    std::vector<float> B(static_cast<std::size_t>(kn) * ldb);
    std::vector<float> C0(6 * ldc), C1(6 * ldc);
    for (auto& v : A) v = dist(rng);
    for (auto& v : B) v = dist(rng);
    for (std::size_t i = 0; i < C0.size(); ++i) C0[i] = C1[i] = dist(rng);
    sc.gemm_tile_6x16(A.data(), a_rs, a_ks, B.data(), ldb, C0.data(), ldc, kn);
    for (Backend b : simd_backends()) {
      const simd::KernelTable* t = simd::table_for(b);
      std::vector<float> C2(C1);
      t->gemm_tile_6x16(A.data(), a_rs, a_ks, B.data(), ldb, C2.data(), ldc,
                        kn);
      ASSERT_TRUE(BitsEq(C0.data(), C2.data(), C0.size(), "gemm_tile", b));
    }
  }
}

// --- im2col rows: odd sizes, strides, padding -------------------------------

TEST(Simd, Im2colRowOddSizesBitwise) {
  const auto& sc = simd::scalar_table();
  std::mt19937 rng(19);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (int H : {1, 3, 7, 16, 33})
    for (int W : {1, 5, 8, 17, 40})
      for (int kern : {1, 3})
        for (int stride : {1, 2})
          for (int pad : {0, kern / 2}) {
            const int oh = (H + 2 * pad - kern) / stride + 1;
            const int ow = (W + 2 * pad - kern) / stride + 1;
            if (oh <= 0 || ow <= 0) continue;
            std::vector<float> src(static_cast<std::size_t>(H) * W);
            for (auto& v : src) v = dist(rng);
            std::vector<float> ref(static_cast<std::size_t>(oh) * ow);
            for (int ky = 0; ky < kern; ++ky)
              for (int kx = 0; kx < kern; ++kx) {
                sc.im2col_row(src.data(), H, W, oh, ow, stride, pad, ky, kx,
                              ref.data());
                for (Backend b : simd_backends()) {
                  std::vector<float> got(ref.size(), -99.0f);
                  simd::table_for(b)->im2col_row(src.data(), H, W, oh, ow,
                                                 stride, pad, ky, kx,
                                                 got.data());
                  ASSERT_TRUE(BitsEq(ref.data(), got.data(), ref.size(),
                                     "im2col_row", b))
                      << "H=" << H << " W=" << W << " k=" << kern
                      << " s=" << stride << " p=" << pad;
                }
              }
          }
}

// --- YUV rows: width sweep including tails ----------------------------------

TEST(Simd, YuvRowsWidthSweepBitwise) {
  const auto& sc = simd::scalar_table();
  std::mt19937 rng(23);
  std::uniform_real_distribution<float> dist(-0.2f, 1.2f);
  for (int W : {2, 4, 6, 8, 10, 14, 16, 18, 26, 34, 64, 66, 126}) {
    const int cw = W / 2;
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<float> yrow(W), u0(cw), u1(cw), v0(cw), v1(cw);
      for (auto* p : {&yrow, &u0, &u1, &v0, &v1})
        for (auto& v : *p) v = dist(rng);
      const float fy = (rep % 2) ? 0.25f : 0.75f;
      std::vector<float> r0(W), g0(W), b0(W);
      sc.yuv_to_rgb_row(yrow.data(), u0.data(), u1.data(), v0.data(),
                        v1.data(), fy, W, cw, r0.data(), g0.data(), b0.data());
      std::vector<float> yo0(W), uf0(W), vf0(W), box0(cw);
      sc.rgb_to_yuv_row(r0.data(), g0.data(), b0.data(), W, yo0.data(),
                        uf0.data(), vf0.data());
      sc.chroma_box_row(uf0.data(), vf0.data(), W, box0.data());
      for (Backend b : simd_backends()) {
        const simd::KernelTable* t = simd::table_for(b);
        std::vector<float> r1(W), g1(W), b1(W);
        t->yuv_to_rgb_row(yrow.data(), u0.data(), u1.data(), v0.data(),
                          v1.data(), fy, W, cw, r1.data(), g1.data(),
                          b1.data());
        ASSERT_TRUE(BitsEq(r0.data(), r1.data(), W, "yuv_to_rgb_row r", b))
            << "W=" << W;
        ASSERT_TRUE(BitsEq(g0.data(), g1.data(), W, "yuv_to_rgb_row g", b))
            << "W=" << W;
        ASSERT_TRUE(BitsEq(b0.data(), b1.data(), W, "yuv_to_rgb_row b", b))
            << "W=" << W;
        std::vector<float> yo1(W), uf1(W), vf1(W), box1(cw);
        t->rgb_to_yuv_row(r0.data(), g0.data(), b0.data(), W, yo1.data(),
                          uf1.data(), vf1.data());
        ASSERT_TRUE(BitsEq(yo0.data(), yo1.data(), W, "rgb_to_yuv_row y", b));
        ASSERT_TRUE(BitsEq(uf0.data(), uf1.data(), W, "rgb_to_yuv_row u", b));
        ASSERT_TRUE(BitsEq(vf0.data(), vf1.data(), W, "rgb_to_yuv_row v", b));
        t->chroma_box_row(uf0.data(), vf0.data(), W, box1.data());
        ASSERT_TRUE(
            BitsEq(box0.data(), box1.data(), cw, "chroma_box_row", b));
      }
    }
  }
}

// --- motion compensation: edge clamps and partial blocks --------------------

TEST(Simd, McBlocksEdgeClampsBitwise) {
  const auto& sc = simd::scalar_table();
  std::mt19937 rng(29);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  for (int it = 0; it < 200; ++it) {
    const int W = 5 + static_cast<int>(rng() % 40);
    const int H = 5 + static_cast<int>(rng() % 40);
    std::vector<float> ref0(static_cast<std::size_t>(W) * H);
    std::vector<float> ref1(ref0.size());
    for (auto& v : ref0) v = dist(rng);
    for (auto& v : ref1) v = dist(rng);
    const int size = 4 + static_cast<int>(rng() % 13);
    // Blocks deliberately straddle the right/bottom border, and vectors
    // reach far outside the plane so every clamp path fires.
    const int bx = static_cast<int>(rng() % W);
    const int by = static_cast<int>(rng() % H);
    const int mvx = static_cast<int>(rng() % (2 * W + 21)) - (W + 10);
    const int mvy = static_cast<int>(rng() % (2 * H + 21)) - (H + 10);
    std::vector<float> d0(ref0.size(), 0.0f);
    sc.mc_copy_block(ref0.data(), d0.data(), W, H, bx, by, size, mvx, mvy);
    std::vector<float> e0(ref0.size(), 0.0f);
    sc.mc_bi_block(ref0.data(), mvx, mvy, ref1.data(), -mvx, -mvy, e0.data(),
                   W, H, bx, by, size);
    for (Backend b : simd_backends()) {
      const simd::KernelTable* t = simd::table_for(b);
      std::vector<float> d1(ref0.size(), 0.0f);
      t->mc_copy_block(ref0.data(), d1.data(), W, H, bx, by, size, mvx, mvy);
      ASSERT_TRUE(
          BitsEq(d0.data(), d1.data(), d0.size(), "mc_copy_block", b));
      std::vector<float> e1(ref0.size(), 0.0f);
      t->mc_bi_block(ref0.data(), mvx, mvy, ref1.data(), -mvx, -mvy, e1.data(),
                     W, H, bx, by, size);
      ASSERT_TRUE(BitsEq(e0.data(), e1.data(), e0.size(), "mc_bi_block", b));
    }
  }
}

// --- end-to-end: public API under a scoped backend swap ---------------------

TEST(Simd, ConvertRoundTripIdenticalAcrossBackends) {
  const int W = 70, H = 38;  // not multiples of 8: exercises row tails
  FrameRGB rgb(W, H);
  std::mt19937 rng(31);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  for (Plane* p : {&rgb.r, &rgb.g, &rgb.b})
    for (int y = 0; y < H; ++y)
      for (int x = 0; x < W; ++x) p->at(x, y) = dist(rng);

  FrameYUV yuv_ref;
  FrameRGB rgb_ref;
  {
    simd::ScopedBackendForTest guard(Backend::kScalar);
    yuv_ref = rgb_to_yuv420(rgb);
    rgb_ref = yuv420_to_rgb(yuv_ref);
  }
  for (Backend b : simd_backends()) {
    simd::ScopedBackendForTest guard(b);
    const FrameYUV yuv = rgb_to_yuv420(rgb);
    ASSERT_TRUE(BitsEq(yuv.y.data(), yuv_ref.y.data(), yuv.y.size(),
                       "rgb_to_yuv420 y", b));
    ASSERT_TRUE(BitsEq(yuv.u.data(), yuv_ref.u.data(), yuv.u.size(),
                       "rgb_to_yuv420 u", b));
    ASSERT_TRUE(BitsEq(yuv.v.data(), yuv_ref.v.data(), yuv.v.size(),
                       "rgb_to_yuv420 v", b));
    const FrameRGB back = yuv420_to_rgb(yuv);
    ASSERT_TRUE(BitsEq(back.r.data(), rgb_ref.r.data(), back.r.size(),
                       "yuv420_to_rgb r", b));
    ASSERT_TRUE(BitsEq(back.g.data(), rgb_ref.g.data(), back.g.size(),
                       "yuv420_to_rgb g", b));
    ASSERT_TRUE(BitsEq(back.b.data(), rgb_ref.b.data(), back.b.size(),
                       "yuv420_to_rgb b", b));
  }
}

TEST(Simd, CodecBlockPathIdenticalAcrossBackends) {
  std::mt19937 rng(37);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  codec::Quantizer q(32);
  for (int it = 0; it < 200; ++it) {
    codec::Block8 spatial{};
    for (auto& v : spatial) v = dist(rng);
    const bool intra = (it % 2) == 0;
    codec::Levels8 lv_ref{};
    codec::Block8 rec_ref{};
    {
      simd::ScopedBackendForTest guard(Backend::kScalar);
      lv_ref = codec::forward_block(spatial, q, intra);
      rec_ref = codec::reconstruct_block(lv_ref, q, intra);
    }
    for (Backend b : simd_backends()) {
      simd::ScopedBackendForTest guard(b);
      const codec::Levels8 lv = codec::forward_block(spatial, q, intra);
      ASSERT_EQ(lv, lv_ref) << simd::backend_name(b);
      const codec::Block8 rec = codec::reconstruct_block(lv, q, intra);
      ASSERT_TRUE(
          BitsEq(rec.data(), rec_ref.data(), 64, "reconstruct_block", b));
    }
  }
}

TEST(Simd, MotionCompensateIdenticalAcrossBackends) {
  std::mt19937 rng(41);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  Plane ref(37, 23), ref2(37, 23);
  for (int y = 0; y < 23; ++y)
    for (int x = 0; x < 37; ++x) {
      ref.at(x, y) = dist(rng);
      ref2.at(x, y) = dist(rng);
    }
  for (int it = 0; it < 100; ++it) {
    const int size = 4 + static_cast<int>(rng() % 13);
    const int bx = static_cast<int>(rng() % 37);
    const int by = static_cast<int>(rng() % 23);
    const codec::MotionVector mv{static_cast<int>(rng() % 31) - 15,
                                 static_cast<int>(rng() % 31) - 15};
    Plane d_ref(37, 23);
    {
      simd::ScopedBackendForTest guard(Backend::kScalar);
      codec::motion_compensate(ref, d_ref, bx, by, size, mv);
      codec::motion_compensate_bi(ref, mv, ref2, {-mv.x, -mv.y}, d_ref, bx,
                                  by, size);
    }
    for (Backend b : simd_backends()) {
      simd::ScopedBackendForTest guard(b);
      Plane d(37, 23);
      codec::motion_compensate(ref, d, bx, by, size, mv);
      codec::motion_compensate_bi(ref, mv, ref2, {-mv.x, -mv.y}, d, bx, by,
                                  size);
      ASSERT_TRUE(
          BitsEq(d.data(), d_ref.data(), d.size(), "motion_compensate", b));
    }
  }
}

}  // namespace
}  // namespace dcsr
