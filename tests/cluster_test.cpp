#include <gtest/gtest.h>

#include <set>

#include "cluster/global_kmeans.hpp"
#include "cluster/kmeans.hpp"
#include "cluster/silhouette.hpp"

namespace dcsr::cluster {
namespace {

// Three well-separated Gaussian blobs in 2-D.
Dataset three_blobs(Rng& rng, int per_blob = 20, double spread = 0.3) {
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Dataset data;
  for (int b = 0; b < 3; ++b)
    for (int i = 0; i < per_blob; ++i)
      data.push_back({static_cast<float>(centers[b][0] + rng.normal(0, spread)),
                      static_cast<float>(centers[b][1] + rng.normal(0, spread))});
  return data;
}

// Ground-truth blob of point i given the construction above.
int blob_of(std::size_t i, int per_blob = 20) { return static_cast<int>(i) / per_blob; }

// Checks that an assignment exactly recovers the blob partition (up to
// cluster relabeling).
void expect_recovers_blobs(const Clustering& c, int per_blob = 20) {
  std::set<int> blob_labels[3];
  for (std::size_t i = 0; i < c.assignment.size(); ++i)
    blob_labels[static_cast<std::size_t>(blob_of(i, per_blob))].insert(c.assignment[i]);
  for (const auto& s : blob_labels) EXPECT_EQ(s.size(), 1u);  // pure clusters
  std::set<int> all;
  for (const auto& s : blob_labels) all.insert(s.begin(), s.end());
  EXPECT_EQ(all.size(), 3u);  // distinct labels
}

TEST(SqDistance, MatchesHandComputation) {
  EXPECT_DOUBLE_EQ(sq_distance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(sq_distance({1, 1, 1}, {1, 1, 1}), 0.0);
}

TEST(Lloyd, RecoversSeparatedBlobs) {
  Rng rng(1);
  const Dataset data = three_blobs(rng);
  // Seed near the true centers.
  const Clustering c = lloyd(data, {{1, 1}, {9, 1}, {1, 9}}, 50);
  expect_recovers_blobs(c);
  EXPECT_LT(c.inertia, 60.0);  // ~n * spread^2 * dims
}

TEST(Lloyd, RejectsBadK) {
  const Dataset data{{0, 0}, {1, 1}};
  EXPECT_THROW(lloyd(data, {}, 10), std::invalid_argument);
  EXPECT_THROW(lloyd(data, {{0, 0}, {1, 1}, {2, 2}}, 10), std::invalid_argument);
}

TEST(KMeans, RecoversSeparatedBlobs) {
  Rng rng(2);
  const Dataset data = three_blobs(rng);
  const Clustering c = kmeans(data, 3, rng);
  expect_recovers_blobs(c);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  Rng rng(3);
  Dataset data{{0, 0}, {5, 5}, {9, 1}};
  const Clustering c = kmeans(data, 3, rng);
  EXPECT_NEAR(c.inertia, 0.0, 1e-9);
}

TEST(KMeans, InertiaDecreasesWithK) {
  Rng rng(4);
  const Dataset data = three_blobs(rng);
  const double i2 = kmeans(data, 2, rng).inertia;
  const double i3 = kmeans(data, 3, rng).inertia;
  const double i6 = kmeans(data, 6, rng).inertia;
  EXPECT_GT(i2, i3);
  EXPECT_GT(i3, i6);
}

TEST(GlobalKMeans, RecoversSeparatedBlobs) {
  Rng rng(5);
  const Dataset data = three_blobs(rng);
  expect_recovers_blobs(global_kmeans(data, 3));
}

TEST(GlobalKMeans, ExhaustiveMatchesOrBeatsFast) {
  Rng rng(6);
  const Dataset data = three_blobs(rng, 8, 1.2);
  const double fast = global_kmeans(data, 4, 100, /*exhaustive=*/false).inertia;
  const double exact = global_kmeans(data, 4, 100, /*exhaustive=*/true).inertia;
  EXPECT_LE(exact, fast + 1e-9);
}

TEST(GlobalKMeans, NeverWorseThanSingleLloydRun) {
  // The local-optimum argument of §3.1.2: global K-means should match or
  // beat a single random-restart Lloyd run on a clusterable dataset.
  Rng rng(7);
  Dataset data = three_blobs(rng, 15, 2.0);
  const double global_inertia = global_kmeans(data, 3).inertia;
  const double lloyd_inertia = kmeans(data, 3, rng, 100, /*n_init=*/1).inertia;
  EXPECT_LE(global_inertia, lloyd_inertia * 1.001);
}

TEST(GlobalKMeans, SweepIsIncrementallyConsistent) {
  Rng rng(8);
  const Dataset data = three_blobs(rng);
  const auto sweep = global_kmeans_sweep(data, 5);
  ASSERT_EQ(sweep.size(), 5u);
  for (std::size_t i = 0; i < sweep.size(); ++i)
    EXPECT_EQ(sweep[i].k(), static_cast<int>(i) + 1);
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_LE(sweep[i].inertia, sweep[i - 1].inertia + 1e-9);
}

TEST(Silhouette, PerfectSeparationNearOne) {
  Rng rng(9);
  const Dataset data = three_blobs(rng, 20, 0.1);
  const Clustering c = global_kmeans(data, 3);
  EXPECT_GT(silhouette(data, c.assignment), 0.95);
}

TEST(Silhouette, OverSplitScoresLower) {
  Rng rng(10);
  const Dataset data = three_blobs(rng, 20, 0.5);
  const double s3 = silhouette(data, global_kmeans(data, 3).assignment);
  const double s6 = silhouette(data, global_kmeans(data, 6).assignment);
  EXPECT_GT(s3, s6);
}

TEST(Silhouette, SweepPeaksAtTrueK) {
  Rng rng(11);
  const Dataset data = three_blobs(rng, 20, 0.4);
  const auto curve = silhouette_sweep(data, 8);
  ASSERT_EQ(curve.size(), 7u);  // k = 2..8
  std::size_t best = 0;
  for (std::size_t i = 1; i < curve.size(); ++i)
    if (curve[i] > curve[best]) best = i;
  EXPECT_EQ(best + 2, 3u);  // peak at k = 3
}

TEST(Silhouette, SingleClusterIsZero) {
  const Dataset data{{0, 0}, {1, 1}, {2, 2}};
  EXPECT_DOUBLE_EQ(silhouette(data, {0, 0, 0}), 0.0);
}

TEST(Silhouette, BadInputsThrow) {
  EXPECT_THROW(silhouette({}, {}), std::invalid_argument);
  EXPECT_THROW(silhouette({{0, 0}}, {0, 1}), std::invalid_argument);
}

TEST(Silhouette, IdenticalPointsSplitAcrossClustersScoreZeroOrLess) {
  // Degenerate data: all points identical. Any 2-way split has a = b = 0;
  // contributions are 0 (denominator guard), so the score must not be
  // positive — the sweep will never prefer splitting indistinguishable data.
  const Dataset data(8, Point{1.0f, 2.0f});
  std::vector<int> assignment{0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_LE(silhouette(data, assignment), 0.0);
}

TEST(GlobalKMeans, SweepValidatesArguments) {
  const Dataset data{{0, 0}, {1, 1}, {2, 2}};
  EXPECT_THROW(global_kmeans_sweep(data, 0), std::invalid_argument);
  EXPECT_THROW(global_kmeans_sweep(data, 4), std::invalid_argument);
  EXPECT_THROW(global_kmeans(data, 0), std::invalid_argument);
}

TEST(GlobalKMeans, HandlesDuplicatePoints) {
  // Clusters of exact duplicates must not crash the candidate search.
  Dataset data;
  for (int i = 0; i < 6; ++i) data.push_back({0.0f, 0.0f});
  for (int i = 0; i < 6; ++i) data.push_back({5.0f, 5.0f});
  const Clustering c = global_kmeans(data, 2);
  EXPECT_NEAR(c.inertia, 0.0, 1e-12);
  EXPECT_NE(c.assignment[0], c.assignment[6]);
}

}  // namespace
}  // namespace dcsr::cluster
