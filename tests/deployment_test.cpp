// End-to-end deployment round trip: pipeline -> CDN directory -> client.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/deployment.hpp"
#include "util/file.hpp"
#include "core/client_pipeline.hpp"
#include "stream/abr.hpp"
#include "stream/session.hpp"
#include "video/genres.hpp"

namespace dcsr::core {
namespace {

ServerConfig fast_config() {
  ServerConfig cfg;
  cfg.codec.crf = 51;
  cfg.codec.intra_period = 10;
  cfg.vae = {.input_size = 16, .latent_dim = 4, .base_channels = 4, .hidden = 32};
  cfg.vae_epochs = 5;
  cfg.micro = {.n_filters = 6, .n_resblocks = 1, .scale = 1};
  cfg.k_max = 3;
  cfg.training = {.iterations = 20, .patch_size = 16, .batch_size = 2, .lr = 3e-3};
  cfg.seed = 13;
  return cfg;
}

struct TempDir {
  std::string path;
  TempDir() {
    path = ::testing::TempDir() + "dcsr_deploy_" +
           std::to_string(::getpid()) + "_" + std::to_string(counter++);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  static int counter;
};
int TempDir::counter = 0;

TEST(Deployment, WriteLoadRoundTripFp32) {
  const auto video = make_genre_video(Genre::kMusicVideo, 66, 64, 48, 16.0, 15.0);
  const ServerResult server = run_server_pipeline(*video, fast_config());

  TempDir dir;
  write_deployment(server, dir.path, /*fp16=*/false);
  for (const char* f : {"video.dcv", "models.bin", "playlist.txt", "meta.txt"})
    EXPECT_TRUE(std::filesystem::exists(dir.path + "/" + f)) << f;

  const Deployment dep = load_deployment(dir.path);
  EXPECT_FALSE(dep.fp16);
  EXPECT_EQ(dep.micro, server.micro_models[0]->config());
  EXPECT_EQ(dep.labels, server.labels);
  EXPECT_EQ(dep.video.size_bytes(), server.encoded.size_bytes());
  ASSERT_EQ(dep.models.size(), static_cast<std::size_t>(server.k));

  // fp32 deployment plays back *identically* to the in-memory pipeline.
  const PlaybackResult a =
      play_dcsr(server.encoded, server.labels, server.micro_models, *video);
  const PlaybackResult b = play_dcsr(dep.video, dep.labels, dep.models, *video);
  ASSERT_EQ(a.frame_psnr.size(), b.frame_psnr.size());
  for (std::size_t i = 0; i < a.frame_psnr.size(); ++i)
    EXPECT_DOUBLE_EQ(a.frame_psnr[i], b.frame_psnr[i]);
}

TEST(Deployment, Fp16HalvesModelBytesAtNearIdenticalQuality) {
  const auto video = make_genre_video(Genre::kNews, 67, 64, 48, 12.0, 15.0);
  const ServerResult server = run_server_pipeline(*video, fast_config());

  TempDir dir32, dir16;
  write_deployment(server, dir32.path, false);
  write_deployment(server, dir16.path, true);
  const auto size32 = std::filesystem::file_size(dir32.path + "/models.bin");
  const auto size16 = std::filesystem::file_size(dir16.path + "/models.bin");
  EXPECT_LT(size16, size32 * 6 / 10);

  const Deployment dep = load_deployment(dir16.path);
  EXPECT_TRUE(dep.fp16);
  const PlaybackResult a =
      play_dcsr(server.encoded, server.labels, server.micro_models, *video);
  const PlaybackResult b = play_dcsr(dep.video, dep.labels, dep.models, *video);
  EXPECT_NEAR(a.mean_psnr, b.mean_psnr, 0.1);
}

TEST(Deployment, ManifestDrivesSessionIdentically) {
  const auto video = make_genre_video(Genre::kAnimation, 68, 64, 48, 12.0, 15.0);
  const ServerResult server = run_server_pipeline(*video, fast_config());
  TempDir dir;
  write_deployment(server, dir.path, true);
  const Deployment dep = load_deployment(dir.path);

  const auto session = stream::simulate_session(dep.manifest);
  EXPECT_EQ(session.video_bytes, dep.video.size_bytes());
  EXPECT_EQ(session.model_downloads, static_cast<int>(dep.models.size()));
}

TEST(Deployment, MissingFilesFailLoudly) {
  TempDir dir;
  EXPECT_THROW(load_deployment(dir.path), std::runtime_error);
}

TEST(Deployment, CorruptMetaRejected) {
  const auto video = make_genre_video(Genre::kGaming, 69, 64, 48, 10.0, 15.0);
  const ServerResult server = run_server_pipeline(*video, fast_config());
  TempDir dir;
  write_deployment(server, dir.path, true);
  write_file(dir.path + "/meta.txt", {'b', 'a', 'd', '\n'});
  EXPECT_THROW(load_deployment(dir.path), std::invalid_argument);
}

}  // namespace
}  // namespace dcsr::core
