#include <gtest/gtest.h>

#include "codec/decoder.hpp"
#include "codec/rate_control.hpp"
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "split/segmenter.hpp"
#include "video/genres.hpp"

namespace dcsr::codec {
namespace {

TEST(SegmentBps, MatchesHandComputation) {
  EncodedSegment seg;
  EncodedFrame f;
  f.payload.assign(1500, 0);  // 12000 bits
  seg.frames.push_back(f);
  seg.frames.push_back(f);    // 24000 bits over 2 frames
  // 2 frames at 10 fps = 0.2 s -> 120000 bps.
  EXPECT_DOUBLE_EQ(segment_bps(seg, 10.0), 120000.0);
  EXPECT_DOUBLE_EQ(segment_bps(EncodedSegment{}, 10.0), 0.0);
}

TEST(RateControl, EverySegmentMeetsTheTarget) {
  const auto video = make_genre_video(Genre::kSports, 111, 64, 48, 6.0, 15.0);
  const auto segments = split::fixed_segments(video->frame_count(), 30);
  CodecConfig base;
  const double target = 60000.0;  // bits per second
  const auto rc = encode_with_target_bitrate(*video, segments, base, target);

  ASSERT_EQ(rc.video.segments.size(), segments.size());
  ASSERT_EQ(rc.segment_crf.size(), segments.size());
  for (std::size_t s = 0; s < rc.video.segments.size(); ++s) {
    if (rc.segment_crf[s] < 51) {  // 51 = could not fit, delivered anyway
      EXPECT_LE(segment_bps(rc.video.segments[s], video->fps()), target)
          << "segment " << s;
    }
    EXPECT_EQ(rc.video.segments[s].crf, rc.segment_crf[s]);
  }
}

TEST(RateControl, UsesLowestCrfThatFits) {
  // Re-encoding any segment one CRF lower must exceed the target (otherwise
  // the search stopped too early).
  const auto video = make_genre_video(Genre::kNews, 112, 64, 48, 4.0, 15.0);
  const auto segments = split::fixed_segments(video->frame_count(), 30);
  CodecConfig base;
  const double target = 50000.0;
  const auto rc = encode_with_target_bitrate(*video, segments, base, target);

  for (std::size_t s = 0; s < segments.size(); ++s) {
    const int crf = rc.segment_crf[s];
    if (crf == 0 || crf >= 51) continue;
    std::vector<FrameYUV> frames;
    for (int i = 0; i < segments[s].frame_count; ++i)
      frames.push_back(rgb_to_yuv420(video->frame(segments[s].first_frame + i)));
    CodecConfig lower = base;
    lower.crf = crf - 1;
    const auto trial = Encoder(lower).encode_segment(frames, segments[s].first_frame);
    EXPECT_GT(segment_bps(trial, video->fps()), target) << "segment " << s;
  }
}

TEST(RateControl, HigherTargetGivesBetterQuality) {
  const auto video = make_genre_video(Genre::kDocumentary, 113, 64, 48, 3.0, 15.0);
  const auto segments = split::fixed_segments(video->frame_count(), 45);
  CodecConfig base;

  auto quality_at = [&](double target) {
    const auto rc = encode_with_target_bitrate(*video, segments, base, target);
    Decoder dec(64, 48, rc.video.crf);
    const auto frames = dec.decode_video(rc.video);
    double acc = 0.0;
    for (int i = 0; i < video->frame_count(); i += 11)
      acc += psnr_luma(rgb_to_yuv420(video->frame(i)),
                       frames[static_cast<std::size_t>(i)]);
    return acc;
  };
  EXPECT_GT(quality_at(400000.0), quality_at(30000.0));
}

TEST(RateControl, PerSegmentCrfDecodesCorrectly) {
  // A rate-controlled stream can mix CRFs across segments; the decoder must
  // pick each segment's own quantiser.
  const auto video = make_genre_video(Genre::kMusicVideo, 114, 64, 48, 6.0, 15.0);
  const auto segments = split::fixed_segments(video->frame_count(), 30);
  const auto rc =
      encode_with_target_bitrate(*video, segments, CodecConfig{}, 80000.0);

  Decoder dec(64, 48, rc.video.crf);
  const auto frames = dec.decode_video(rc.video);
  ASSERT_EQ(frames.size(), static_cast<std::size_t>(video->frame_count()));
  for (int i = 0; i < video->frame_count(); i += 17)
    EXPECT_GT(psnr_luma(rgb_to_yuv420(video->frame(i)),
                        frames[static_cast<std::size_t>(i)]),
              18.0)
        << "frame " << i;
}

TEST(RateControl, ValidatesInputs) {
  const auto video = make_genre_video(Genre::kNews, 115, 64, 48, 1.0, 15.0);
  EXPECT_THROW(encode_with_target_bitrate(*video, {{0, 15}}, CodecConfig{}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(
      encode_with_target_bitrate(*video, {{0, 10}}, CodecConfig{}, 1000.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace dcsr::codec
